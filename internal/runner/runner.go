// Package runner is the Master Data Service (MDS) runner analog of
// Section 2.3: "the Runner Service deploys executables which probe their
// respective services resulting in measurement of availability and quality
// of service. The runner service is deployed in each Azure region." The
// backup scheduler runs within this runner per day and cluster.
//
// A Runner executes registered probes (service health checks) and jobs (the
// backup scheduler) on a cadence, accumulating availability and latency
// statistics per probe.
//
// Concurrency: a Runner is safe for concurrent use; probes and jobs execute
// on the runner's own goroutines and stats snapshots may be read at any
// time. Stop is idempotent and waits for in-flight work.
package runner

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ProbeResult is one measurement of a service.
type ProbeResult struct {
	Probe   string
	At      time.Time
	Healthy bool
	Latency time.Duration
	Detail  string
}

// Probe measures the availability/QoS of one service.
type Probe interface {
	// Name identifies the probe in statistics.
	Name() string
	// Check performs one measurement.
	Check() ProbeResult
}

// ProbeFunc adapts a function to the Probe interface.
type ProbeFunc struct {
	ProbeName string
	Fn        func() ProbeResult
}

// Name implements Probe.
func (p ProbeFunc) Name() string { return p.ProbeName }

// Check implements Probe.
func (p ProbeFunc) Check() ProbeResult { return p.Fn() }

// HTTPProbe checks an HTTP health endpoint — the shape of the probes MDS
// deploys against the serving endpoint.
type HTTPProbe struct {
	ProbeName string
	URL       string
	Client    *http.Client
}

// Name implements Probe.
func (p *HTTPProbe) Name() string { return p.ProbeName }

// Check implements Probe: GET the URL; 2xx within the client timeout is
// healthy.
func (p *HTTPProbe) Check() ProbeResult {
	client := p.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	start := time.Now()
	res := ProbeResult{Probe: p.ProbeName, At: start}
	resp, err := client.Get(p.URL)
	res.Latency = time.Since(start)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	defer resp.Body.Close()
	res.Healthy = resp.StatusCode >= 200 && resp.StatusCode < 300
	if !res.Healthy {
		res.Detail = resp.Status
	}
	return res
}

// Job is a recurring operational task hosted by the runner (the backup
// scheduler in production).
type Job interface {
	Name() string
	Run() error
}

// JobFunc adapts a function to the Job interface.
type JobFunc struct {
	JobName string
	Fn      func() error
}

// Name implements Job.
func (j JobFunc) Name() string { return j.JobName }

// Run implements Job.
func (j JobFunc) Run() error { return j.Fn() }

// Stats accumulates one probe's availability measurements.
type Stats struct {
	Checks       int
	Healthy      int
	TotalLatency time.Duration
	LastResult   ProbeResult
}

// Availability returns the healthy fraction of checks.
func (s Stats) Availability() float64 {
	if s.Checks == 0 {
		return 0
	}
	return float64(s.Healthy) / float64(s.Checks)
}

// MeanLatency returns the average check latency.
func (s Stats) MeanLatency() time.Duration {
	if s.Checks == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Checks)
}

// Runner executes probes and jobs for one cluster. Safe for concurrent use.
type Runner struct {
	Cluster string

	mu      sync.Mutex
	probes  []Probe
	jobs    []Job
	stats   map[string]*Stats
	jobErrs map[string][]string
	clock   func() time.Time
}

// New returns a runner for a cluster. clock may be nil for wall time.
func New(cluster string, clock func() time.Time) *Runner {
	if clock == nil {
		clock = time.Now
	}
	return &Runner{
		Cluster: cluster,
		stats:   map[string]*Stats{},
		jobErrs: map[string][]string{},
		clock:   clock,
	}
}

// Register adds a probe.
func (r *Runner) Register(p Probe) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.probes = append(r.probes, p)
}

// AddJob adds a recurring job.
func (r *Runner) AddJob(j Job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobs = append(r.jobs, j)
}

// RunOnce executes every probe and job once — one tick of the per-day MDS
// cadence. Probe results are accumulated; job errors are recorded and
// returned (the first one).
func (r *Runner) RunOnce() ([]ProbeResult, error) {
	r.mu.Lock()
	probes := append([]Probe(nil), r.probes...)
	jobs := append([]Job(nil), r.jobs...)
	r.mu.Unlock()

	results := make([]ProbeResult, 0, len(probes))
	for _, p := range probes {
		res := p.Check()
		if res.At.IsZero() {
			res.At = r.clock()
		}
		results = append(results, res)
		r.mu.Lock()
		st := r.stats[p.Name()]
		if st == nil {
			st = &Stats{}
			r.stats[p.Name()] = st
		}
		st.Checks++
		if res.Healthy {
			st.Healthy++
		}
		st.TotalLatency += res.Latency
		st.LastResult = res
		r.mu.Unlock()
	}

	var firstErr error
	for _, j := range jobs {
		if err := j.Run(); err != nil {
			wrapped := fmt.Errorf("runner %s: job %s: %w", r.Cluster, j.Name(), err)
			r.mu.Lock()
			r.jobErrs[j.Name()] = append(r.jobErrs[j.Name()], err.Error())
			r.mu.Unlock()
			if firstErr == nil {
				firstErr = wrapped
			}
		}
	}
	return results, firstErr
}

// ProbeStats returns a copy of the accumulated stats for one probe.
func (r *Runner) ProbeStats(name string) (Stats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stats[name]
	if !ok {
		return Stats{}, false
	}
	return *st, true
}

// Probes lists registered probe names, sorted.
func (r *Runner) Probes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.probes))
	for _, p := range r.probes {
		out = append(out, p.Name())
	}
	sort.Strings(out)
	return out
}

// JobErrors returns recorded error messages for a job.
func (r *Runner) JobErrors(name string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.jobErrs[name]...)
}
