// Package simulate generates synthetic PostgreSQL/MySQL server fleets and
// SQL database populations whose statistical structure mirrors the Azure
// production telemetry the paper was evaluated on: per-server average
// customer CPU load percentage at 5-minute granularity (servers) and
// 15-minute granularity (SQL databases, Appendix A).
//
// The generator is the substitution for production data we cannot access
// (see DESIGN.md): server archetypes — stable, daily pattern, weekly pattern,
// unstable without pattern, short-lived — are mixed according to the
// population shares the paper reports in Figure 3, and every stochastic
// choice is driven by an explicit seed so experiments are reproducible.
//
// Concurrency: fleets materialize telemetry lazily behind a per-server
// sync.Once, so concurrent readers of Server.Load are safe; mutating a
// returned series is not (View/FillGaps/Clone copy before mutating).
// Equivalence: lazy and eager generation are pinned to produce identical
// series per seed, and metadata queries never force materialization.
package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"seagull/internal/timeseries"
)

// Class is the typical-customer-activity archetype of a server (Section 3.2).
type Class int

const (
	// ClassStable servers are accurately predicted by their average load
	// (Definition 4).
	ClassStable Class = iota
	// ClassDaily servers repeat the same load profile every day
	// (Definition 5).
	ClassDaily
	// ClassWeekly servers repeat the profile of the same weekday one week
	// earlier but not the previous day (Definition 6).
	ClassWeekly
	// ClassNoPattern servers follow neither a daily nor a weekly pattern.
	ClassNoPattern
)

// String returns the class name used in experiment output.
func (c Class) String() string {
	switch c {
	case ClassStable:
		return "stable"
	case ClassDaily:
		return "daily"
	case ClassWeekly:
		return "weekly"
	case ClassNoPattern:
		return "nopattern"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Mix is the fleet class composition. Fractions must sum to 1; ShortLived
// servers additionally receive one of the four load shapes at random but live
// under three weeks (Definition 3).
//
// PaperMix reproduces Figure 3.
type Mix struct {
	ShortLived float64
	Stable     float64
	Daily      float64
	Weekly     float64
	NoPattern  float64
}

// PaperMix is the population of Figure 3: 42.1% short-lived, 53.5% stable,
// 0.1% daily, 0.1% weekly, 4.2% without pattern.
var PaperMix = Mix{ShortLived: 0.421, Stable: 0.535, Daily: 0.001, Weekly: 0.001, NoPattern: 0.042}

// Sum returns the total of all fractions (should be 1).
func (m Mix) Sum() float64 {
	return m.ShortLived + m.Stable + m.Daily + m.Weekly + m.NoPattern
}

// Config describes one regional fleet to generate.
type Config struct {
	Region   string
	Servers  int
	Weeks    int           // telemetry span in whole weeks
	Interval time.Duration // sampling interval; 0 means 5 minutes
	Start    time.Time     // span start; zero means Sunday 2019-12-01 UTC
	Mix      Mix           // class composition; zero Mix means PaperMix
	// BusyFraction of long-lived servers get peak load above 60% of capacity
	// (the "busy server" population of Figure 13(a)). Default 0.12.
	BusyFraction float64
	// CapacityFraction of long-lived servers saturate CPU capacity at least
	// once a week (Figure 13(b) reports 3.7%). Default 0.037.
	CapacityFraction float64
	// MissingRate is the per-point probability that telemetry is absent,
	// exercising validation and gap repair. Default 0 (no gaps).
	MissingRate float64
	// Eager materializes every server's load series at generation time. The
	// default (false) defers each series to the first Server.Load call: the
	// per-server RNG is parked right after the metadata draws, so the lazy
	// series is identical to the eager one (see TestFleetLazyMatchesEager)
	// while consumers that never read a server's telemetry — figure
	// benchmarks slicing a fleet prefix, classification of subsets — skip
	// the dominant generation cost entirely.
	Eager bool
	Seed  int64
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC) // a Sunday
	}
	if c.Mix == (Mix{}) {
		c.Mix = PaperMix
	}
	if c.BusyFraction == 0 {
		c.BusyFraction = 0.12
	}
	if c.CapacityFraction == 0 {
		c.CapacityFraction = 0.037
	}
	if c.Weeks == 0 {
		c.Weeks = 4
	}
	return c
}

// Server is one synthetic PostgreSQL/MySQL server with its full telemetry.
type Server struct {
	ID     string
	Region string
	Class  Class
	// ShortLived servers existed for under three weeks (Definition 3).
	ShortLived bool
	Busy       bool // peak load above 60% of capacity
	CreatedAt  time.Time
	DeletedAt  time.Time // zero when the server outlives the span
	// BackupDuration is the expected length of a full backup; the LL window
	// length is BackupDuration/Interval observations (Definition 7).
	BackupDuration time.Duration
	// BackupDay is the weekday the server is due for its weekly full backup.
	BackupDay time.Weekday
	// DefaultBackupStart is the offset from midnight of the current
	// (activity-agnostic) backup window the automated workflow uses.
	DefaultBackupStart time.Duration

	// Load materialization state: the series either exists (load) or is
	// derivable on demand from the parked per-server generator (gen).
	interval time.Duration
	points   int
	once     sync.Once
	load     timeseries.Series
	gen      func() timeseries.Series
}

// Load returns the telemetry covering the server's lifetime within the
// span, materializing it from the parked per-server RNG on first access.
// Materialization is synchronized, so concurrent partitions may touch the
// same server; the returned series must be treated as read-only (Slice,
// View, FillGaps and friends all copy before mutating).
func (s *Server) Load() timeseries.Series {
	s.once.Do(s.materialize)
	return s.load
}

func (s *Server) materialize() {
	if s.gen != nil {
		s.load = s.gen()
		s.gen = nil
	}
}

// Interval returns the telemetry sampling interval without materializing
// the series.
func (s *Server) Interval() time.Duration { return s.interval }

// Alive reports whether the server existed during the whole of day d
// (0-based from the fleet start).
func (s *Server) Alive(fleetStart time.Time, day int) bool {
	dayStart := fleetStart.Add(time.Duration(day) * 24 * time.Hour)
	dayEnd := dayStart.Add(24 * time.Hour)
	if s.CreatedAt.After(dayStart) {
		return false
	}
	return s.DeletedAt.IsZero() || !s.DeletedAt.Before(dayEnd)
}

// LifespanDays returns the number of whole days the server existed within
// the generated span. It is answerable from metadata alone — no
// materialization.
func (s *Server) LifespanDays() int {
	ppd := int(24 * time.Hour / s.interval)
	if ppd == 0 {
		return 0
	}
	return s.points / ppd
}

// WindowPoints returns the LL window length in observations for this
// server, from metadata alone.
func (s *Server) WindowPoints() int {
	return int(s.BackupDuration / s.interval)
}

// Fleet is a generated regional server population.
type Fleet struct {
	Config  Config
	Servers []*Server
}

// Span returns the fleet telemetry interval [start, end).
func (f *Fleet) Span() (time.Time, time.Time) {
	end := f.Config.Start.Add(time.Duration(f.Config.Weeks) * 7 * 24 * time.Hour)
	return f.Config.Start, end
}

// GenerateFleet builds a deterministic synthetic fleet for cfg.
func GenerateFleet(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	fleet := &Fleet{Config: cfg, Servers: make([]*Server, 0, cfg.Servers)}
	for i := 0; i < cfg.Servers; i++ {
		// Every server owns an independent generator derived from the fleet
		// seed so the fleet is reproducible regardless of generation order.
		srng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)*7919 + 17))
		fleet.Servers = append(fleet.Servers, generateServer(cfg, i, srng))
	}
	_ = rng
	return fleet
}

func pickClass(m Mix, r float64) (Class, bool) {
	if r < m.ShortLived {
		// Short-lived servers still have a load shape; weight it toward the
		// long-lived shape distribution.
		return ClassStable, true
	}
	r -= m.ShortLived
	switch {
	case r < m.Stable:
		return ClassStable, false
	case r < m.Stable+m.Daily:
		return ClassDaily, false
	case r < m.Stable+m.Daily+m.Weekly:
		return ClassWeekly, false
	default:
		return ClassNoPattern, false
	}
}

func generateServer(cfg Config, idx int, rng *rand.Rand) *Server {
	class, short := pickClass(cfg.Mix, rng.Float64())
	if short {
		// Give short-lived servers a mixture of shapes too.
		switch {
		case rng.Float64() < 0.8:
			class = ClassStable
		case rng.Float64() < 0.5:
			class = ClassDaily
		default:
			class = ClassNoPattern
		}
	}

	s := &Server{
		ID:         fmt.Sprintf("%s-srv-%06d", cfg.Region, idx),
		Region:     cfg.Region,
		Class:      class,
		ShortLived: short,
	}

	// Backup parameters: full backups take 30 minutes to 2 hours and are due
	// weekly on a fixed weekday.
	s.BackupDuration = time.Duration(30+rng.Intn(91)) * time.Minute
	s.BackupDay = time.Weekday(rng.Intn(7))
	// Default (activity-agnostic) windows: many night slots chosen years ago
	// by operators, the rest uniform across the day — the paper's automated
	// workflow "does not take typical customer activity patterns into
	// account", so a sizable minority of defaults collide with business hours.
	if rng.Float64() < 0.55 {
		s.DefaultBackupStart = time.Duration(rng.Intn(6*12)) * 5 * time.Minute // 00:00–06:00
	} else {
		s.DefaultBackupStart = time.Duration(rng.Intn(24*12)) * 5 * time.Minute
	}

	spanEnd := cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	s.CreatedAt = cfg.Start
	if short {
		// Definition 3: lifespan under three weeks. Place it inside the span.
		lifeDays := 1 + rng.Intn(20)
		maxOffset := cfg.Weeks*7 - lifeDays
		if maxOffset < 0 {
			maxOffset = 0
			lifeDays = cfg.Weeks * 7
		}
		offset := rng.Intn(maxOffset + 1)
		s.CreatedAt = cfg.Start.Add(time.Duration(offset) * 24 * time.Hour)
		s.DeletedAt = s.CreatedAt.Add(time.Duration(lifeDays) * 24 * time.Hour)
	}

	shape := newShape(class, cfg, rng)
	s.Busy = shape.peak() > 60
	from, to := s.CreatedAt, spanEnd
	if !s.DeletedAt.IsZero() && s.DeletedAt.Before(to) {
		to = s.DeletedAt
	}
	n := int(to.Sub(from) / cfg.Interval)
	s.interval = cfg.Interval
	s.points = n
	// Park the generator: rng sits exactly after the metadata draws, so
	// materializing now or later consumes the identical stream.
	startDay := int(from.Sub(cfg.Start) / (24 * time.Hour))
	s.gen = func() timeseries.Series {
		return materializeLoad(cfg, shape, rng, from, n, startDay)
	}
	if cfg.Eager {
		s.once.Do(s.materialize)
	}
	return s
}

// materializeLoad draws the n-point series for a server whose metadata has
// already consumed its prefix of rng's stream.
func materializeLoad(cfg Config, sh *shape, rng *rand.Rand, from time.Time, n, startDay int) timeseries.Series {
	vals := make([]float64, n)
	ppd := int(24 * time.Hour / cfg.Interval)
	for i := range vals {
		day := startDay + i/ppd
		slot := i % ppd
		v := sh.at(day, slot, ppd, rng)
		if cfg.MissingRate > 0 && rng.Float64() < cfg.MissingRate {
			vals[i] = timeseries.Missing
			continue
		}
		vals[i] = clamp(v, 0, 100)
	}
	return timeseries.New(from, cfg.Interval, vals)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// shape produces the deterministic-plus-noise load value for (day, slot).
type shape struct {
	class Class
	base  float64
	noise float64
	// Daily/weekly plateau: business-hours bump.
	amp        float64
	bumpStart  int // slot index where the bump begins
	bumpLen    int // bump length in slots
	weekFactor [7]float64
	// No-pattern servers: per-day random bursts are derived from a per-day
	// seed so the same (day, slot) always yields the same value.
	burstSeed int64
	maxPeak   float64
	// Cached burst layout for the most recently computed day, plus the
	// re-seeded per-day PRNG (one retained source instead of a fresh
	// ~5KB rngSource allocation per server-day).
	burstDay    int
	burstLevels []float64 // per-slot structural load for burstDay
	dayRNG      *rand.Rand
}

func newShape(class Class, cfg Config, rng *rand.Rand) *shape {
	// Observation noise: the +10/−5 bound must hold for well-behaved servers
	// even over short (30-minute) LL windows, so per-point noise stays under
	// ~1.3 points, matching the tight traces of the paper's Figures 4–6.
	sh := &shape{class: class, noise: 0.7 + rng.Float64()*0.6}
	busy := rng.Float64() < cfg.BusyFraction
	capacity := rng.Float64() < cfg.CapacityFraction
	ppd := int(24 * time.Hour / cfg.Interval)

	switch class {
	case ClassStable:
		sh.base = 5 + rng.Float64()*35
		if busy {
			sh.base = 62 + rng.Float64()*25
		}
		if capacity {
			sh.base = 97 + rng.Float64()*3 // pegged at CPU capacity
		}
		sh.maxPeak = sh.base
	case ClassDaily, ClassWeekly:
		sh.base = 5 + rng.Float64()*20
		sh.amp = 25 + rng.Float64()*30
		if busy {
			sh.amp = 50 + rng.Float64()*30
		}
		sh.bumpStart = ppd/4 + rng.Intn(ppd/4) // bump starts 06:00–12:00
		sh.bumpLen = ppd/6 + rng.Intn(ppd/4)   // 4–10 hours
		for d := range sh.weekFactor {
			sh.weekFactor[d] = 1
		}
		if class == ClassWeekly {
			// A weekly pattern: weekends differ strongly from weekdays and
			// each weekday carries its own stable factor, so the previous
			// *equivalent* day predicts but the previous day does not.
			for d := range sh.weekFactor {
				sh.weekFactor[d] = 0.35 + rng.Float64()*1.0
			}
			sh.weekFactor[0] *= 0.3 // quiet Sundays
			sh.weekFactor[6] *= 0.4
		}
		sh.maxPeak = sh.base + sh.amp
	case ClassNoPattern:
		sh.base = 8 + rng.Float64()*30
		sh.amp = 30 + rng.Float64()*40
		if busy {
			sh.amp = 55 + rng.Float64()*35
		}
		sh.burstSeed = rng.Int63()
		sh.maxPeak = sh.base + sh.amp
	}
	if class != ClassStable {
		if capacity {
			sh.amp = 100 - sh.base // saturates capacity at peak
			sh.maxPeak = 100
		} else if sh.base+sh.amp > 97 {
			// Only the explicitly chosen capacity sub-population may saturate
			// CPU; everyone else keeps ≥3 points of headroom (Figure 13(b)).
			sh.amp = 97 - sh.base
			sh.maxPeak = 97
		}
	}
	return sh
}

func (sh *shape) peak() float64 { return sh.maxPeak }

// at returns the load for slot of day. rng is only used for observation
// noise; all structural randomness is derived deterministically.
func (sh *shape) at(day, slot, ppd int, rng *rand.Rand) float64 {
	switch sh.class {
	case ClassStable:
		return sh.base + rng.NormFloat64()*sh.noise
	case ClassDaily:
		return sh.base + sh.amp*sh.bump(slot, ppd) + rng.NormFloat64()*sh.noise
	case ClassWeekly:
		dow := day % 7
		return sh.base + sh.amp*sh.weekFactor[dow]*sh.bump(slot, ppd) + rng.NormFloat64()*sh.noise
	default: // ClassNoPattern
		return sh.burstValue(day, slot, ppd) + rng.NormFloat64()*sh.noise
	}
}

// bump is a smooth plateau in [0,1] covering [bumpStart, bumpStart+bumpLen)
// with half-hour ramps, mimicking business-hours activity.
func (sh *shape) bump(slot, ppd int) float64 {
	ramp := ppd / 48 // 30 minutes
	if ramp == 0 {
		ramp = 1
	}
	pos := slot - sh.bumpStart
	if pos < 0 || pos >= sh.bumpLen {
		return 0
	}
	if pos < ramp {
		return float64(pos+1) / float64(ramp)
	}
	if pos >= sh.bumpLen-ramp {
		return float64(sh.bumpLen-pos) / float64(ramp)
	}
	return 1
}

// burstValue draws the no-pattern load: a mildly drifting base level plus
// two to five bursts at random times with random amplitudes. Bursts are
// biased toward waking hours (06:00–22:00) — human-triggered activity — so
// nights stay mostly, but not reliably, quiet: the class fails the daily and
// weekly pattern checks yet keeps realistic low-load valleys. The per-day
// PRNG makes the value a pure function of (day, slot); the day's layout is
// cached because callers scan slots sequentially.
func (sh *shape) burstValue(day, slot, ppd int) float64 {
	if sh.burstLevels == nil || sh.burstDay != day || len(sh.burstLevels) != ppd {
		if sh.dayRNG == nil {
			sh.dayRNG = rand.New(rand.NewSource(0))
		}
		drng := sh.dayRNG
		// Seed resets the retained source to exactly the state a fresh
		// NewSource(seed) would have, so the per-day stream is unchanged.
		drng.Seed(sh.burstSeed + int64(day)*31337)
		levels := sh.burstLevels
		if len(levels) != ppd {
			levels = make([]float64, ppd)
		}
		level := sh.base * (0.88 + drng.Float64()*0.24)
		for i := range levels {
			levels[i] = level
		}
		bursts := 2 + drng.Intn(4)
		dayStart, daySpan := ppd/4, 2*ppd/3 // 06:00 .. 22:00
		for b := 0; b < bursts; b++ {
			var start int
			if drng.Float64() < 0.8 {
				start = dayStart + drng.Intn(daySpan)
			} else {
				start = drng.Intn(ppd)
			}
			length := ppd/24 + drng.Intn(ppd/8+1)
			amp := sh.amp * (0.3 + drng.Float64()*0.7)
			for s := start; s < start+length && s < ppd; s++ {
				levels[s] += amp
			}
		}
		// Overlapping bursts must not pierce the server's peak envelope —
		// only the designated capacity sub-population reaches 100%.
		for s := range levels {
			if levels[s] > sh.maxPeak {
				levels[s] = sh.maxPeak
			}
		}
		sh.burstDay, sh.burstLevels = day, levels
	}
	return sh.burstLevels[slot]
}

// --- Appendix A: SQL databases (15-minute granularity) ---

// Database is one synthetic Azure SQL database (Appendix A.1).
type Database struct {
	ID   string
	Load timeseries.Series
	// StableByConstruction records whether the generator drew this database
	// from the stable sub-population; classification should approximately
	// recover it.
	StableByConstruction bool
}

// SQLConfig describes a SQL database population for the auto-scale scenario.
type SQLConfig struct {
	Databases int
	Days      int       // telemetry span in days
	Start     time.Time // zero means 2019-12-01 UTC
	// StableFraction of databases have stable load; the paper measured
	// 19.36% (Appendix A.1). Default 0.1936.
	StableFraction float64
	Seed           int64
}

func (c SQLConfig) withDefaults() SQLConfig {
	if c.Start.IsZero() {
		c.Start = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.StableFraction == 0 {
		c.StableFraction = 0.1936
	}
	if c.Days == 0 {
		c.Days = 28
	}
	return c
}

// GenerateSQL builds a deterministic SQL database population.
func GenerateSQL(cfg SQLConfig) []*Database {
	cfg = cfg.withDefaults()
	const interval = 15 * time.Minute
	ppd := int(24 * time.Hour / interval)
	out := make([]*Database, 0, cfg.Databases)
	for i := 0; i < cfg.Databases; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed*999_983 + int64(i)*104_729 + 5))
		stable := rng.Float64() < cfg.StableFraction
		n := cfg.Days * ppd
		vals := make([]float64, n)
		base := 5 + rng.Float64()*40
		if stable {
			noise := 0.5 + rng.Float64()*1.5
			for j := range vals {
				vals[j] = clamp(base+rng.NormFloat64()*noise, 0, 100)
			}
		} else {
			// Unstable: drifting level + daily seasonality + occasional jumps.
			amp := 10 + rng.Float64()*30
			drift := rng.NormFloat64() * 0.3
			level := base
			phase := rng.Float64() * 2 * math.Pi
			for j := range vals {
				if j%ppd == 0 {
					level += drift + rng.NormFloat64()*4
					if rng.Float64() < 0.15 {
						level += (rng.Float64() - 0.3) * 30
					}
					level = clamp(level, 2, 90)
				}
				season := amp * 0.5 * (1 + math.Sin(2*math.Pi*float64(j%ppd)/float64(ppd)+phase))
				vals[j] = clamp(level+season+rng.NormFloat64()*3, 0, 100)
			}
		}
		out = append(out, &Database{
			ID:                   fmt.Sprintf("sqldb-%06d", i),
			Load:                 timeseries.New(cfg.Start, interval, vals),
			StableByConstruction: stable,
		})
	}
	return out
}
