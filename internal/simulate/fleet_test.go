package simulate

import (
	"math"
	"sync"
	"testing"
	"time"

	"seagull/internal/timeseries"
)

func smallConfig() Config {
	return Config{Region: "test", Servers: 200, Weeks: 4, Seed: 1}
}

func TestGenerateFleetDeterministic(t *testing.T) {
	a := GenerateFleet(smallConfig())
	b := GenerateFleet(smallConfig())
	if len(a.Servers) != len(b.Servers) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Servers), len(b.Servers))
	}
	for i := range a.Servers {
		sa, sb := a.Servers[i], b.Servers[i]
		if sa.ID != sb.ID || sa.Class != sb.Class || sa.ShortLived != sb.ShortLived {
			t.Fatalf("server %d metadata differs", i)
		}
		if sa.Load().Len() != sb.Load().Len() {
			t.Fatalf("server %d load length differs", i)
		}
		for j := range sa.Load().Values {
			va, vb := sa.Load().Values[j], sb.Load().Values[j]
			if va != vb && !(timeseries.IsMissing(va) && timeseries.IsMissing(vb)) {
				t.Fatalf("server %d point %d differs: %v vs %v", i, j, va, vb)
			}
		}
	}
}

func TestFleetSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a := GenerateFleet(cfg)
	cfg.Seed = 2
	b := GenerateFleet(cfg)
	same := true
	for i := range a.Servers {
		if a.Servers[i].Class != b.Servers[i].Class {
			same = false
			break
		}
	}
	if same {
		// Classes could coincide; check load values too.
		for j, v := range a.Servers[0].Load().Values {
			if v != b.Servers[0].Load().Values[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should produce different fleets")
	}
}

func TestLoadBoundsAndLength(t *testing.T) {
	f := GenerateFleet(smallConfig())
	ppd := 288
	for _, s := range f.Servers {
		if s.Load().Interval != 5*time.Minute {
			t.Fatalf("%s interval = %v", s.ID, s.Load().Interval)
		}
		for j, v := range s.Load().Values {
			if timeseries.IsMissing(v) {
				continue
			}
			if v < 0 || v > 100 {
				t.Fatalf("%s point %d out of [0,100]: %v", s.ID, j, v)
			}
		}
		if !s.ShortLived {
			if s.Load().Len() != 4*7*ppd {
				t.Fatalf("%s long-lived load len = %d", s.ID, s.Load().Len())
			}
			if !s.CreatedAt.Equal(f.Config.Start.UTC()) && !s.CreatedAt.Equal(f.Config.Start) {
				t.Fatalf("%s long-lived created at %v", s.ID, s.CreatedAt)
			}
		} else {
			days := s.Load().NumDays()
			if days > 20 {
				t.Fatalf("%s short-lived but has %d days", s.ID, days)
			}
		}
	}
}

func TestShortLivedFraction(t *testing.T) {
	cfg := Config{Region: "t", Servers: 3000, Weeks: 4, Seed: 7}
	f := GenerateFleet(cfg)
	short := 0
	for _, s := range f.Servers {
		if s.ShortLived {
			short++
		}
	}
	got := float64(short) / float64(len(f.Servers))
	if math.Abs(got-PaperMix.ShortLived) > 0.03 {
		t.Errorf("short-lived fraction = %.3f, want ≈ %.3f", got, PaperMix.ShortLived)
	}
}

func TestPaperMixSumsToOne(t *testing.T) {
	if math.Abs(PaperMix.Sum()-1) > 1e-9 {
		t.Errorf("PaperMix sums to %v", PaperMix.Sum())
	}
}

func TestBackupParameters(t *testing.T) {
	f := GenerateFleet(smallConfig())
	for _, s := range f.Servers {
		if s.BackupDuration < 30*time.Minute || s.BackupDuration > 2*time.Hour {
			t.Fatalf("%s backup duration %v", s.ID, s.BackupDuration)
		}
		if s.DefaultBackupStart < 0 || s.DefaultBackupStart >= 24*time.Hour {
			t.Fatalf("%s default start %v", s.ID, s.DefaultBackupStart)
		}
		if s.WindowPoints() < 6 || s.WindowPoints() > 24 {
			t.Fatalf("%s window points %d", s.ID, s.WindowPoints())
		}
	}
}

func TestAlive(t *testing.T) {
	f := GenerateFleet(smallConfig())
	start, _ := f.Span()
	for _, s := range f.Servers {
		if s.ShortLived {
			continue
		}
		if !s.Alive(start, 0) || !s.Alive(start, 27) {
			t.Fatalf("long-lived %s should be alive on days 0 and 27", s.ID)
		}
	}
	// A short-lived server must be dead on some day.
	for _, s := range f.Servers {
		if !s.ShortLived {
			continue
		}
		aliveAll := true
		for d := 0; d < 28; d++ {
			if !s.Alive(start, d) {
				aliveAll = false
				break
			}
		}
		if aliveAll {
			t.Fatalf("short-lived %s alive for the whole span", s.ID)
		}
	}
}

func TestMissingRate(t *testing.T) {
	cfg := smallConfig()
	cfg.MissingRate = 0.01
	f := GenerateFleet(cfg)
	total, missing := 0, 0
	for _, s := range f.Servers {
		total += s.Load().Len()
		missing += s.Load().MissingCount()
	}
	got := float64(missing) / float64(total)
	if got < 0.005 || got > 0.02 {
		t.Errorf("missing rate = %.4f, want ≈ 0.01", got)
	}
}

func TestStableServersAreFlat(t *testing.T) {
	f := GenerateFleet(smallConfig())
	for _, s := range f.Servers {
		if s.Class != ClassStable || s.ShortLived {
			continue
		}
		if std := s.Load().Std(); std > 5 {
			t.Errorf("%s stable but std = %.2f", s.ID, std)
		}
	}
}

func TestDailyServersRepeat(t *testing.T) {
	cfg := Config{Region: "t", Servers: 400, Weeks: 4, Seed: 3,
		Mix: Mix{Daily: 1}}
	f := GenerateFleet(cfg)
	for _, s := range f.Servers[:20] {
		days := s.Load().Days()
		// Same slot on consecutive days differs only by noise.
		d0, d1 := days[1], days[2]
		maxDiff := 0.0
		for j := range d0.Values {
			maxDiff = math.Max(maxDiff, math.Abs(d0.Values[j]-d1.Values[j]))
		}
		if maxDiff > 20 {
			t.Errorf("%s daily but consecutive days differ by %.1f", s.ID, maxDiff)
		}
	}
}

func TestWeeklyServersDifferAcrossWeek(t *testing.T) {
	cfg := Config{Region: "t", Servers: 200, Weeks: 4, Seed: 3, Mix: Mix{Weekly: 1}}
	f := GenerateFleet(cfg)
	// At least most weekly servers must show a large day-to-day divergence
	// somewhere (weekday factors differ) while matching week-over-week.
	diverging := 0
	for _, s := range f.Servers {
		days := s.Load().Days()
		var worstDaily float64
		for d := 1; d < 7; d++ {
			for j := range days[d].Values {
				worstDaily = math.Max(worstDaily, math.Abs(days[d].Values[j]-days[d-1].Values[j]))
			}
		}
		if worstDaily > 15 {
			diverging++
		}
		// Week-over-week must match tightly.
		for d := 7; d < 14; d++ {
			for j := range days[d].Values {
				if diff := math.Abs(days[d].Values[j] - days[d-7].Values[j]); diff > 20 {
					t.Fatalf("%s weekly but day %d differs from day %d by %.1f", s.ID, d, d-7, diff)
				}
			}
		}
	}
	if float64(diverging) < 0.8*float64(len(f.Servers)) {
		t.Errorf("only %d/%d weekly servers diverge day-over-day", diverging, len(f.Servers))
	}
}

func TestNoPatternServersVary(t *testing.T) {
	cfg := Config{Region: "t", Servers: 100, Weeks: 4, Seed: 9, Mix: Mix{NoPattern: 1}}
	f := GenerateFleet(cfg)
	for _, s := range f.Servers {
		if s.Load().Std() < 1 {
			t.Errorf("%s no-pattern but nearly constant (std %.2f)", s.ID, s.Load().Std())
		}
	}
}

func TestBurstValueDeterministic(t *testing.T) {
	cfg := Config{Region: "t", Servers: 5, Weeks: 2, Seed: 4, Mix: Mix{NoPattern: 1}}
	a := GenerateFleet(cfg)
	b := GenerateFleet(cfg)
	for i := range a.Servers {
		for j := range a.Servers[i].Load().Values {
			if a.Servers[i].Load().Values[j] != b.Servers[i].Load().Values[j] {
				t.Fatalf("no-pattern generation not deterministic at server %d point %d", i, j)
			}
		}
	}
}

func TestGenerateSQLPopulation(t *testing.T) {
	dbs := GenerateSQL(SQLConfig{Databases: 1000, Days: 28, Seed: 5})
	if len(dbs) != 1000 {
		t.Fatalf("databases = %d", len(dbs))
	}
	stable := 0
	for _, db := range dbs {
		if db.StableByConstruction {
			stable++
		}
		if db.Load.Interval != 15*time.Minute {
			t.Fatalf("%s interval %v", db.ID, db.Load.Interval)
		}
		if db.Load.NumDays() != 28 {
			t.Fatalf("%s days %d", db.ID, db.Load.NumDays())
		}
		for _, v := range db.Load.Values {
			if v < 0 || v > 100 {
				t.Fatalf("%s load out of range: %v", db.ID, v)
			}
		}
	}
	got := float64(stable) / float64(len(dbs))
	if math.Abs(got-0.1936) > 0.04 {
		t.Errorf("stable fraction = %.3f, want ≈ 0.1936", got)
	}
}

func TestGenerateSQLDeterministic(t *testing.T) {
	a := GenerateSQL(SQLConfig{Databases: 10, Days: 7, Seed: 5})
	b := GenerateSQL(SQLConfig{Databases: 10, Days: 7, Seed: 5})
	for i := range a {
		for j := range a[i].Load.Values {
			if a[i].Load.Values[j] != b[i].Load.Values[j] {
				t.Fatalf("SQL generation not deterministic at db %d point %d", i, j)
			}
		}
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := Config{Region: "r", Servers: 1}.withDefaults()
	if cfg.Interval != 5*time.Minute || cfg.Weeks != 4 || cfg.Mix != PaperMix {
		t.Errorf("defaults = %+v", cfg)
	}
	sq := SQLConfig{Databases: 1}.withDefaults()
	if sq.Days != 28 || sq.StableFraction != 0.1936 {
		t.Errorf("sql defaults = %+v", sq)
	}
}

// TestFleetLazyMatchesEager is the lazy-materialization equivalence gate:
// the deferred per-server series must be identical — point for point,
// including missing-value positions and timestamps — to the eagerly
// generated one, because the parked RNG sits exactly where the eager path
// starts drawing observation noise.
func TestFleetLazyMatchesEager(t *testing.T) {
	cfg := Config{Region: "lazy", Servers: 40, Weeks: 3, Seed: 99, MissingRate: 0.01}
	eagerCfg := cfg
	eagerCfg.Eager = true
	lazy := GenerateFleet(cfg)
	eager := GenerateFleet(eagerCfg)
	for i := range eager.Servers {
		le, ll := eager.Servers[i].Load(), lazy.Servers[i].Load()
		if !le.Start.Equal(ll.Start) || le.Interval != ll.Interval || le.Len() != ll.Len() {
			t.Fatalf("server %d: shape mismatch eager=%v lazy=%v", i, le, ll)
		}
		for j := range le.Values {
			ve, vl := le.Values[j], ll.Values[j]
			if timeseries.IsMissing(ve) != timeseries.IsMissing(vl) {
				t.Fatalf("server %d point %d: missingness differs", i, j)
			}
			if !timeseries.IsMissing(ve) && ve != vl {
				t.Fatalf("server %d point %d: %v != %v", i, j, ve, vl)
			}
		}
	}
}

// TestFleetMetadataWithoutMaterialization: the per-server metadata the
// experiments consult before deciding to read telemetry must not force the
// series into existence.
func TestFleetMetadataWithoutMaterialization(t *testing.T) {
	fleet := GenerateFleet(Config{Region: "meta", Servers: 20, Weeks: 4, Seed: 3})
	for _, s := range fleet.Servers {
		if s.LifespanDays() <= 0 {
			t.Errorf("%s lifespan %d", s.ID, s.LifespanDays())
		}
		if s.WindowPoints() <= 0 {
			t.Errorf("%s window points %d", s.ID, s.WindowPoints())
		}
		if s.Interval() != 5*time.Minute {
			t.Errorf("%s interval %v", s.ID, s.Interval())
		}
		if s.gen == nil {
			t.Errorf("%s was materialized by metadata access", s.ID)
		}
	}
	// Cross-check the metadata answers against the materialized series.
	for _, s := range fleet.Servers[:5] {
		if got := s.Load().NumDays(); got != s.LifespanDays() {
			t.Errorf("%s lifespan %d != materialized %d", s.ID, s.LifespanDays(), got)
		}
	}
}

// TestFleetConcurrentMaterialization hammers Load from many goroutines; the
// sync.Once guard must hand every caller the same series (run with -race in
// CI's figure-smoke job).
func TestFleetConcurrentMaterialization(t *testing.T) {
	fleet := GenerateFleet(Config{Region: "conc", Servers: 8, Weeks: 2, Seed: 17})
	var wg sync.WaitGroup
	sums := make([][]float64, len(fleet.Servers))
	const readers = 4
	for i := range sums {
		sums[i] = make([]float64, readers)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i, s := range fleet.Servers {
				load := s.Load()
				total := 0.0
				for _, v := range load.Values {
					total += v
				}
				sums[i][r] = total
			}
		}(r)
	}
	wg.Wait()
	for i := range sums {
		for r := 1; r < readers; r++ {
			if sums[i][r] != sums[i][0] {
				t.Fatalf("server %d: readers observed different series", i)
			}
		}
	}
}
