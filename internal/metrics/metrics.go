// Package metrics implements the accuracy metrics the Seagull paper defines
// for low-load prediction (Definitions 1–9) as well as the standard error
// metrics used by the SQL auto-scale scenario (Appendix A.2): mean normalized
// root mean squared error and mean absolute scaled error.
//
// Concurrency: every function is pure (no package state) and safe to call
// concurrently; series arguments are read-only and may be zero-copy views.
// Missing observations follow one convention everywhere: NaN slots are
// skipped, and BucketRatioCount reports how many usable pairs a verdict
// actually covered so thin coverage is never mistaken for accuracy.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"seagull/internal/timeseries"
)

// ErrInsufficientData is returned when a metric needs more observations than
// are available (for example an LL window longer than the day).
var ErrInsufficientData = errors.New("metrics: insufficient data")

// Bound is the acceptable error bound of Definition 1: a predicted point p is
// acceptable for a true point t when t − Under ≤ p ≤ t + Over. The paper's
// production bound tolerates +10 points of over-prediction but only −5 of
// under-prediction, because under-predicting load risks scheduling a backup
// into a busy period.
type Bound struct {
	Over  float64 // tolerated over-prediction (predicted above true)
	Under float64 // tolerated under-prediction (predicted below true)
}

// DefaultBound is the +10/−5 asymmetric production bound (Definition 1).
var DefaultBound = Bound{Over: 10, Under: 5}

// Contains reports whether predicted is within the bound of trueVal.
func (b Bound) Contains(trueVal, predicted float64) bool {
	return predicted <= trueVal+b.Over && predicted >= trueVal-b.Under
}

// Config carries the empirically chosen constants of Definitions 1–9. The
// zero value is not useful; use DefaultConfig (the production constants) and
// override fields as needed for other scenarios.
type Config struct {
	Bound Bound
	// AccuracyThreshold is the minimal bucket ratio for a prediction to be
	// "accurate" (Definition 2). Production value: 0.90.
	AccuracyThreshold float64
	// WindowBound is the acceptable error bound applied to the average true
	// load when judging whether a predicted LL window was chosen correctly
	// (Definition 8). Production value: the same +10/−5 bound.
	WindowBound Bound
	// HistoryWeeks is the number of trailing weeks a server must have been
	// predicted correctly for it to be "predictable" (Definition 9).
	// Production value: 3.
	HistoryWeeks int
}

// DefaultConfig returns the production constants used for backup scheduling.
func DefaultConfig() Config {
	return Config{
		Bound:             DefaultBound,
		AccuracyThreshold: 0.90,
		WindowBound:       DefaultBound,
		HistoryWeeks:      3,
	}
}

// BucketRatio (Definition 1) returns the fraction of predicted points within
// the acceptable error bound of their true counterparts. Pairs where either
// side is missing are skipped; a comparison with no usable pairs has ratio 0.
func BucketRatio(trueS, predS timeseries.Series, b Bound) (float64, error) {
	r, _, err := BucketRatioCount(trueS, predS, b)
	return r, err
}

// BucketRatioCount is BucketRatio plus the number of usable (both sides
// non-missing) pairs the ratio was computed over. Consumers judging partially
// observed series — the stream drift detector compares live telemetry that
// may only cover part of a predicted day — need the pair count to decide
// whether the ratio is meaningful at all.
func BucketRatioCount(trueS, predS timeseries.Series, b Bound) (ratio float64, pairs int, err error) {
	if trueS.Len() != predS.Len() {
		return 0, 0, fmt.Errorf("%w: true has %d points, predicted %d",
			timeseries.ErrLengthMismatch, trueS.Len(), predS.Len())
	}
	in, n := 0, 0
	for i := range trueS.Values {
		tv, pv := trueS.Values[i], predS.Values[i]
		if timeseries.IsMissing(tv) || timeseries.IsMissing(pv) {
			continue
		}
		n++
		if b.Contains(tv, pv) {
			in++
		}
	}
	if n == 0 {
		return 0, 0, nil
	}
	return float64(in) / float64(n), n, nil
}

// Accurate (Definition 2) reports whether a prediction is accurate: the
// bucket ratio meets the configured threshold.
func Accurate(trueS, predS timeseries.Series, cfg Config) (bool, float64, error) {
	r, err := BucketRatio(trueS, predS, cfg.Bound)
	if err != nil {
		return false, 0, err
	}
	return r >= cfg.AccuracyThreshold, r, nil
}

// Window is a lowest-load window (Definition 7): a contiguous interval of a
// day-long series identified by its start index and length in observations,
// with the average load during the interval.
type Window struct {
	Start   int     // index of the first observation in the window
	Length  int     // number of observations (backup duration / interval)
	AvgLoad float64 // average load over the window in the series it came from
}

// Overlaps reports whether two windows share at least one observation.
func (w Window) Overlaps(o Window) bool {
	return w.Start < o.Start+o.Length && o.Start < w.Start+w.Length
}

// LowestLoadWindow (Definition 7) finds the length-w window with minimal
// average load in day (a series covering the backup day). w is the expected
// backup duration in observations.
func LowestLoadWindow(day timeseries.Series, w int) (Window, error) {
	start, mean, err := day.MinWindow(w)
	if err != nil {
		return Window{}, fmt.Errorf("%w: %v", ErrInsufficientData, err)
	}
	return Window{Start: start, Length: w, AvgLoad: mean}, nil
}

// WindowResult is the complete Definition 8 evaluation for one server-day.
type WindowResult struct {
	True      Window // LL window computed on true load
	Predicted Window // LL window computed on predicted load
	// TrueLoadInPredicted is the average *true* load during the predicted
	// window — the quantity that actually matters for backup interference.
	TrueLoadInPredicted float64
	// Correct is Definition 8: the average true load in the predicted window
	// is within the window bound of the average true load in the true window.
	Correct bool
}

// EvaluateWindow (Definition 8) computes true and predicted LL windows of
// length w and judges whether the predicted window was chosen correctly: the
// true window must not be a significantly better slot than the predicted one.
func EvaluateWindow(trueDay, predDay timeseries.Series, w int, cfg Config) (WindowResult, error) {
	if trueDay.Len() != predDay.Len() {
		return WindowResult{}, fmt.Errorf("%w: true day %d, predicted day %d",
			timeseries.ErrLengthMismatch, trueDay.Len(), predDay.Len())
	}
	tw, err := LowestLoadWindow(trueDay, w)
	if err != nil {
		return WindowResult{}, err
	}
	pw, err := LowestLoadWindow(predDay, w)
	if err != nil {
		return WindowResult{}, err
	}
	trueInPred, err := trueDay.WindowMean(pw.Start, pw.Length)
	if err != nil {
		return WindowResult{}, err
	}
	res := WindowResult{True: tw, Predicted: pw, TrueLoadInPredicted: trueInPred}
	// Definition 8: correct when the true load during the predicted window is
	// within the acceptable bound of the true load during the true window.
	res.Correct = cfg.WindowBound.Contains(tw.AvgLoad, trueInPred)
	return res, nil
}

// DayResult combines both orthogonal metrics for one server backup day:
// whether the LL window was chosen correctly (Definition 8) and whether the
// load during the predicted window was predicted accurately (Definition 2
// applied to the window).
type DayResult struct {
	Window         WindowResult
	WindowAccurate bool    // Definition 2 restricted to the predicted window
	WindowRatio    float64 // bucket ratio inside the predicted window
}

// EvaluateDay runs the full backup-day evaluation: LL window choice and load
// accuracy during the predicted window. It allocates nothing: the window
// comparison reads zero-copy views of both days, which lets the parallel
// accuracy-evaluation loops (fig12b and the worker ablation sweep millions
// of server-days) run without per-day garbage.
func EvaluateDay(trueDay, predDay timeseries.Series, w int, cfg Config) (DayResult, error) {
	wr, err := EvaluateWindow(trueDay, predDay, w, cfg)
	if err != nil {
		return DayResult{}, err
	}
	ts, err := trueDay.View(wr.Predicted.Start, wr.Predicted.Start+wr.Predicted.Length)
	if err != nil {
		return DayResult{}, err
	}
	ps, err := predDay.View(wr.Predicted.Start, wr.Predicted.Start+wr.Predicted.Length)
	if err != nil {
		return DayResult{}, err
	}
	acc, ratio, err := Accurate(ts, ps, cfg)
	if err != nil {
		return DayResult{}, err
	}
	return DayResult{Window: wr, WindowAccurate: acc, WindowRatio: ratio}, nil
}

// Predictable (Definition 9) reports whether a server is predictable: every
// one of the trailing HistoryWeeks backup-day evaluations chose the LL window
// correctly and predicted its load accurately. history must contain at least
// cfg.HistoryWeeks results, most recent last; only the trailing
// cfg.HistoryWeeks entries are considered.
func Predictable(history []DayResult, cfg Config) bool {
	if len(history) < cfg.HistoryWeeks {
		return false
	}
	for _, r := range history[len(history)-cfg.HistoryWeeks:] {
		if !r.Window.Correct || !r.WindowAccurate {
			return false
		}
	}
	return true
}

// --- Appendix A.2: standard error metrics for the auto-scale scenario ---

// NRMSE returns the mean normalized root mean squared error (Equation 2):
// sqrt(mean(error²)) / mean(true). A value of 1 matches predicting the mean;
// below 1 beats it. Returns an error for empty input and +Inf when the true
// mean is zero but errors are not.
func NRMSE(trueVals, predVals []float64) (float64, error) {
	if len(trueVals) == 0 || len(trueVals) != len(predVals) {
		return 0, fmt.Errorf("%w: %d true vs %d predicted", ErrInsufficientData, len(trueVals), len(predVals))
	}
	sumSq, sumTrue, n := 0.0, 0.0, 0
	for i := range trueVals {
		tv, pv := trueVals[i], predVals[i]
		if timeseries.IsMissing(tv) || timeseries.IsMissing(pv) {
			continue
		}
		d := pv - tv
		sumSq += d * d
		sumTrue += tv
		n++
	}
	if n == 0 {
		return 0, ErrInsufficientData
	}
	rmse := math.Sqrt(sumSq / float64(n))
	meanTrue := sumTrue / float64(n)
	if meanTrue == 0 {
		if rmse == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return rmse / meanTrue, nil
}

// MASE returns the mean absolute scaled error (Equation 3): the mean absolute
// forecast error divided by the mean absolute error of the one-step-ahead
// naive forecast computed on the true series. Below 1 beats the naive
// forecast. Requires at least two observations.
func MASE(trueVals, predVals []float64) (float64, error) {
	if len(trueVals) < 2 || len(trueVals) != len(predVals) {
		return 0, fmt.Errorf("%w: %d true vs %d predicted", ErrInsufficientData, len(trueVals), len(predVals))
	}
	mae, n := 0.0, 0
	for i := range trueVals {
		if timeseries.IsMissing(trueVals[i]) || timeseries.IsMissing(predVals[i]) {
			continue
		}
		mae += math.Abs(predVals[i] - trueVals[i])
		n++
	}
	if n == 0 {
		return 0, ErrInsufficientData
	}
	mae /= float64(n)
	// Normalizing factor: error of the one-step-ahead naive forecast.
	naive, m := 0.0, 0
	for i := 1; i < len(trueVals); i++ {
		if timeseries.IsMissing(trueVals[i]) || timeseries.IsMissing(trueVals[i-1]) {
			continue
		}
		naive += math.Abs(trueVals[i] - trueVals[i-1])
		m++
	}
	if m == 0 {
		return 0, ErrInsufficientData
	}
	naive /= float64(m)
	if naive == 0 {
		if mae == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return mae / naive, nil
}

// FleetSummary aggregates backup-day evaluation over a fleet of servers.
type FleetSummary struct {
	Servers           int     // servers evaluated
	WindowsCorrect    int     // Definition 8 satisfied
	WindowsAccurate   int     // Definition 2 satisfied on the predicted window
	PredictableCount  int     // Definition 9 satisfied
	PctCorrect        float64 // WindowsCorrect / Servers
	PctAccurate       float64 // WindowsAccurate / Servers
	PctPredictable    float64 // PredictableCount / Servers
	MeanBucketRatio   float64
	totalBucketRatios float64
}

// Add folds one server's latest backup-day result and predictability verdict
// into the summary.
func (f *FleetSummary) Add(r DayResult, predictable bool) {
	f.Servers++
	if r.Window.Correct {
		f.WindowsCorrect++
	}
	if r.WindowAccurate {
		f.WindowsAccurate++
	}
	if predictable {
		f.PredictableCount++
	}
	f.totalBucketRatios += r.WindowRatio
	f.finalize()
}

func (f *FleetSummary) finalize() {
	if f.Servers == 0 {
		return
	}
	n := float64(f.Servers)
	f.PctCorrect = float64(f.WindowsCorrect) / n
	f.PctAccurate = float64(f.WindowsAccurate) / n
	f.PctPredictable = float64(f.PredictableCount) / n
	f.MeanBucketRatio = f.totalBucketRatios / n
}

// String renders the three fleet percentages the paper reports.
func (f *FleetSummary) String() string {
	return fmt.Sprintf("servers=%d LLcorrect=%.2f%% LLaccurate=%.2f%% predictable=%.2f%%",
		f.Servers, 100*f.PctCorrect, 100*f.PctAccurate, 100*f.PctPredictable)
}
