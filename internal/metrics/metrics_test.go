package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"seagull/internal/timeseries"
)

var t0 = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

func series(vals ...float64) timeseries.Series {
	return timeseries.New(t0, 5*time.Minute, vals)
}

func TestBoundContains(t *testing.T) {
	b := DefaultBound // +10 / -5
	cases := []struct {
		trueV, pred float64
		want        bool
	}{
		{50, 50, true},
		{50, 60, true},    // exactly +10 over
		{50, 60.1, false}, // just past over bound
		{50, 45, true},    // exactly -5 under
		{50, 44.9, false}, // just past under bound
		{0, 10, true},
		{0, -6, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.trueV, c.pred); got != c.want {
			t.Errorf("Contains(%v,%v) = %v, want %v", c.trueV, c.pred, got, c.want)
		}
	}
}

func TestBoundAsymmetry(t *testing.T) {
	// The production bound must tolerate more over- than under-prediction.
	b := DefaultBound
	if !b.Contains(50, 58) {
		t.Error("+8 over-prediction should be acceptable")
	}
	if b.Contains(50, 42) {
		t.Error("−8 under-prediction must NOT be acceptable")
	}
}

func TestBucketRatio(t *testing.T) {
	trueS := series(50, 50, 50, 50)
	predS := series(50, 59, 44, 61) // in, in, out, out
	r, err := BucketRatio(trueS, predS, DefaultBound)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.5 {
		t.Errorf("BucketRatio = %v, want 0.5", r)
	}
}

func TestBucketRatioMissing(t *testing.T) {
	trueS := series(50, timeseries.Missing, 50)
	predS := series(50, 50, timeseries.Missing)
	r, err := BucketRatio(trueS, predS, DefaultBound)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("BucketRatio skipping missing = %v, want 1", r)
	}
	allMiss := series(timeseries.Missing)
	r, err = BucketRatio(allMiss, allMiss, DefaultBound)
	if err != nil || r != 0 {
		t.Errorf("all-missing ratio = %v err %v", r, err)
	}
}

func TestBucketRatioLengthMismatch(t *testing.T) {
	if _, err := BucketRatio(series(1), series(1, 2), DefaultBound); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestBucketRatioCount(t *testing.T) {
	trueS := series(50, timeseries.Missing, 50, 50)
	predS := series(50, 50, timeseries.Missing, 80)
	r, n, err := BucketRatioCount(trueS, predS, DefaultBound)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || r != 0.5 {
		t.Errorf("BucketRatioCount = (%v, %d), want (0.5, 2)", r, n)
	}
	allMiss := series(timeseries.Missing)
	r, n, err = BucketRatioCount(allMiss, allMiss, DefaultBound)
	if err != nil || n != 0 || r != 0 {
		t.Errorf("all-missing = (%v, %d, %v)", r, n, err)
	}
	if _, _, err := BucketRatioCount(series(1), series(1, 2), DefaultBound); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestAccurate(t *testing.T) {
	cfg := DefaultConfig()
	trueS := series(50, 50, 50, 50, 50, 50, 50, 50, 50, 50)
	pred := series(50, 50, 50, 50, 50, 50, 50, 50, 50, 50)
	// All 10 in bound → accurate.
	ok, r, err := Accurate(trueS, pred, cfg)
	if err != nil || !ok || r != 1 {
		t.Errorf("perfect prediction: ok=%v r=%v err=%v", ok, r, err)
	}
	// 9/10 in bound → exactly at the 90% threshold → accurate.
	pred.Values[0] = 100
	ok, r, err = Accurate(trueS, pred, cfg)
	if err != nil || !ok || r != 0.9 {
		t.Errorf("90%% prediction: ok=%v r=%v err=%v", ok, r, err)
	}
	// 8/10 → inaccurate.
	pred.Values[1] = 100
	ok, _, err = Accurate(trueS, pred, cfg)
	if err != nil || ok {
		t.Errorf("80%% prediction should be inaccurate")
	}
}

func TestLowestLoadWindow(t *testing.T) {
	day := series(9, 8, 2, 1, 3, 7, 9, 9)
	w, err := LowestLoadWindow(day, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Start != 2 || w.Length != 3 || math.Abs(w.AvgLoad-2) > 1e-9 {
		t.Errorf("LL window = %+v", w)
	}
	if _, err := LowestLoadWindow(day, 100); err == nil {
		t.Error("oversized window should error")
	}
}

func TestWindowOverlaps(t *testing.T) {
	a := Window{Start: 0, Length: 3}
	cases := []struct {
		b    Window
		want bool
	}{
		{Window{Start: 2, Length: 2}, true},
		{Window{Start: 3, Length: 2}, false},
		{Window{Start: 0, Length: 1}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%+v) = %v, want %v", c.b, got, c.want)
		}
	}
}

// Figure 8 scenario: windows do not overlap but true load in the predicted
// window is only slightly above the optimum → correctly chosen.
func TestEvaluateWindowCorrectNonOverlapping(t *testing.T) {
	cfg := DefaultConfig()
	trueDay := series(10, 10, 3, 3, 20, 20, 5, 5, 30, 30)
	// Predicted valley at indices 6..7 (true load 5); true valley at 2..3 (3).
	predDay := series(30, 30, 20, 20, 30, 30, 1, 1, 30, 30)
	res, err := EvaluateWindow(trueDay, predDay, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.True.Start != 2 || res.Predicted.Start != 6 {
		t.Fatalf("windows = %+v", res)
	}
	if res.Predicted.Overlaps(res.True) {
		t.Fatal("windows should not overlap in this scenario")
	}
	// True load in predicted window (5) is within +10 of the optimum (3).
	if !res.Correct {
		t.Errorf("window should be correctly chosen: %+v", res)
	}
}

// Figure 9 scenario: load accurately predicted during the predicted window,
// but a much lower true window exists elsewhere → incorrectly chosen.
func TestEvaluateWindowIncorrect(t *testing.T) {
	cfg := DefaultConfig()
	trueDay := series(50, 50, 1, 1, 50, 50, 40, 40, 50, 50)
	predDay := series(50, 50, 60, 60, 50, 50, 40, 40, 50, 50)
	res, err := EvaluateWindow(trueDay, predDay, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.True.Start != 2 || res.Predicted.Start != 6 {
		t.Fatalf("windows = %+v", res)
	}
	// True load in predicted window is 40 vs optimal 1 → not correct.
	if res.Correct {
		t.Errorf("window should NOT be correctly chosen: %+v", res)
	}
}

// Figure 10 scenario: window chosen correctly but load inside it predicted
// badly → window correct, accuracy fails.
func TestEvaluateDayOrthogonalMetrics(t *testing.T) {
	cfg := DefaultConfig()
	trueDay := series(50, 50, 30, 30, 50, 50, 50, 50, 50, 50)
	predDay := series(50, 50, 5, 5, 50, 50, 50, 50, 50, 50)
	res, err := EvaluateDay(trueDay, predDay, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Window.Correct {
		t.Errorf("window should be chosen correctly (same valley)")
	}
	if res.WindowAccurate {
		t.Errorf("load in window is under-predicted by 25 points; must be inaccurate (ratio %v)", res.WindowRatio)
	}
}

func TestEvaluateDayBothGood(t *testing.T) {
	cfg := DefaultConfig()
	day := series(50, 50, 10, 10, 50, 50, 50, 50)
	res, err := EvaluateDay(day, day.Clone(), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Window.Correct || !res.WindowAccurate || res.WindowRatio != 1 {
		t.Errorf("perfect prediction should satisfy both metrics: %+v", res)
	}
}

func TestEvaluateWindowLengthMismatch(t *testing.T) {
	if _, err := EvaluateWindow(series(1, 2), series(1), 1, DefaultConfig()); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestPredictable(t *testing.T) {
	cfg := DefaultConfig() // 3 weeks
	good := DayResult{Window: WindowResult{Correct: true}, WindowAccurate: true}
	bad := DayResult{Window: WindowResult{Correct: false}, WindowAccurate: true}

	if Predictable([]DayResult{good, good}, cfg) {
		t.Error("2 weeks of history must not be predictable (needs 3)")
	}
	if !Predictable([]DayResult{good, good, good}, cfg) {
		t.Error("3 good weeks should be predictable")
	}
	if Predictable([]DayResult{good, good, bad}, cfg) {
		t.Error("a bad week in the last 3 must block predictability")
	}
	// Older bad weeks outside the trailing window are forgiven.
	if !Predictable([]DayResult{bad, good, good, good}, cfg) {
		t.Error("bad week 4 weeks ago should not matter")
	}
	// Inaccurate load also blocks.
	inacc := DayResult{Window: WindowResult{Correct: true}, WindowAccurate: false}
	if Predictable([]DayResult{good, good, inacc}, cfg) {
		t.Error("inaccurate window load must block predictability")
	}
}

func TestNRMSE(t *testing.T) {
	// Predicting the mean gives NRMSE relative to mean(true).
	trueV := []float64{10, 20, 30}
	predMean := []float64{20, 20, 20}
	got, err := NRMSE(trueV, predMean)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((100.0+0+100)/3.0) / 20.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NRMSE = %v, want %v", got, want)
	}
	// Perfect forecast → 0.
	if v, _ := NRMSE(trueV, trueV); v != 0 {
		t.Errorf("perfect NRMSE = %v", v)
	}
	// Zero true mean with nonzero error → +Inf.
	v, err := NRMSE([]float64{0, 0}, []float64{1, -1})
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("zero-mean NRMSE = %v err %v", v, err)
	}
	if v, _ := NRMSE([]float64{0, 0}, []float64{0, 0}); v != 0 {
		t.Errorf("all-zero NRMSE = %v", v)
	}
	if _, err := NRMSE(nil, nil); err == nil {
		t.Error("empty NRMSE should error")
	}
	if _, err := NRMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched NRMSE should error")
	}
}

func TestMASE(t *testing.T) {
	// Naive one-step error of [1,2,3,4] is 1. A forecast off by 2 everywhere
	// has MASE 2.
	trueV := []float64{1, 2, 3, 4}
	pred := []float64{3, 4, 5, 6}
	got, err := MASE(trueV, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("MASE = %v, want 2", got)
	}
	// Perfect forecast → 0.
	if v, _ := MASE(trueV, trueV); v != 0 {
		t.Errorf("perfect MASE = %v", v)
	}
	// Constant true series: naive error 0, nonzero forecast error → +Inf.
	v, err := MASE([]float64{5, 5, 5}, []float64{6, 6, 6})
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("constant-series MASE = %v err %v", v, err)
	}
	if v, _ := MASE([]float64{5, 5}, []float64{5, 5}); v != 0 {
		t.Errorf("constant perfect MASE = %v", v)
	}
	if _, err := MASE([]float64{1}, []float64{1}); err == nil {
		t.Error("single-point MASE should error")
	}
}

func TestFleetSummary(t *testing.T) {
	var f FleetSummary
	good := DayResult{Window: WindowResult{Correct: true}, WindowAccurate: true, WindowRatio: 1}
	bad := DayResult{Window: WindowResult{Correct: false}, WindowAccurate: false, WindowRatio: 0.5}
	f.Add(good, true)
	f.Add(good, true)
	f.Add(bad, false)
	f.Add(good, false)
	if f.Servers != 4 || f.WindowsCorrect != 3 || f.WindowsAccurate != 3 || f.PredictableCount != 2 {
		t.Errorf("summary = %+v", f)
	}
	if math.Abs(f.PctCorrect-0.75) > 1e-12 || math.Abs(f.PctPredictable-0.5) > 1e-12 {
		t.Errorf("percentages = %+v", f)
	}
	if math.Abs(f.MeanBucketRatio-0.875) > 1e-12 {
		t.Errorf("mean ratio = %v", f.MeanBucketRatio)
	}
	if f.String() == "" {
		t.Error("String should render")
	}
}

// Property: bucket ratio is 1 whenever prediction equals truth.
func TestPropertyPerfectPredictionRatioOne(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		s := series(vals...)
		r, err := BucketRatio(s, s.Clone(), DefaultBound)
		return err == nil && r == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: EvaluateWindow on identical series is always correct, and the
// predicted window equals the true window.
func TestPropertyIdenticalSeriesWindowCorrect(t *testing.T) {
	f := func(raw []uint8, wSeed uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		s := series(vals...)
		w := 1 + int(wSeed)%len(vals)
		res, err := EvaluateWindow(s, s.Clone(), w, DefaultConfig())
		if err != nil {
			return false
		}
		return res.Correct && res.Predicted.Start == res.True.Start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NRMSE and MASE are non-negative.
func TestPropertyErrorMetricsNonNegative(t *testing.T) {
	f := func(a, b []uint8) bool {
		n := min(len(a), len(b))
		if n < 2 {
			return true
		}
		tv := make([]float64, n)
		pv := make([]float64, n)
		for i := 0; i < n; i++ {
			tv[i] = float64(a[i])
			pv[i] = float64(b[i])
		}
		nr, err1 := NRMSE(tv, pv)
		ms, err2 := MASE(tv, pv)
		if err1 != nil || err2 != nil {
			return false
		}
		return nr >= 0 && ms >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
