package lake

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Fault injection: a wrapping Store that fails object I/O at scriptable byte
// offsets. The crash-recovery matrix in internal/stream drives it to simulate
// torn WAL appends, short snapshot reads, CRC corruption and ENOSPC — the
// failure shapes a hard kill or a full disk actually produces — without
// reaching around the lake API. Test-support code, but it lives in the
// package (not a _test file) so other packages' tests can script faults too.

// ErrInjected is the default error an armed fault returns when it fires.
var ErrInjected = errors.New("lake: injected fault")

// FaultOp selects which kind of object I/O a rule arms.
type FaultOp uint8

const (
	// FaultAppend fires on writes through ObjectAppender (WAL appends).
	FaultAppend FaultOp = iota
	// FaultWrite fires on writes through ObjectWriter (staged replaces).
	FaultWrite
	// FaultRead fires on reads through ObjectReader.
	FaultRead
)

func (o FaultOp) String() string {
	switch o {
	case FaultAppend:
		return "append"
	case FaultWrite:
		return "write"
	default:
		return "read"
	}
}

// FaultRule injects one failure into the byte stream of one object.
type FaultRule struct {
	// Name is the exact object name the rule arms.
	Name string
	// Op is the I/O direction the rule fires on.
	Op FaultOp
	// Offset is the cumulative byte offset (per handle stream, counted from
	// the first byte transferred after arming) at which the fault fires.
	// Bytes before it transfer normally — so a write fault at offset k
	// produces a torn frame with exactly k good bytes, and a read fault at
	// offset k a short read.
	Offset int64
	// Err is returned when the fault fires; nil means ErrInjected. For reads,
	// io.EOF simulates a premature end of stream.
	Err error
	// Corrupt flips the byte at Offset instead of failing the call — the
	// bit-rot case CRCs exist for. Read rules only.
	Corrupt bool
}

func (r FaultRule) error() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// faultState tracks one armed rule's stream position.
type faultState struct {
	FaultRule
	pos   int64
	fired bool
}

// FaultStore wraps a Store, injecting armed faults into object I/O. It
// implements the same object surface the stream layer's durability manager
// consumes (stream.ObjectStore). A non-Corrupt rule stays latched after it
// fires: every later matching call keeps failing (a full disk does not drain
// itself) until Disarm or Reset clears it.
type FaultStore struct {
	store *Store

	mu    sync.Mutex
	rules []*faultState
}

// NewFaultStore wraps store with no faults armed.
func NewFaultStore(store *Store) *FaultStore {
	return &FaultStore{store: store}
}

// Arm registers a rule. Multiple rules may be armed at once.
func (f *FaultStore) Arm(r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &faultState{FaultRule: r})
}

// Disarm removes every rule for the named object and op.
func (f *FaultStore) Disarm(name string, op FaultOp) {
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := f.rules[:0]
	for _, st := range f.rules {
		if st.Name != name || st.Op != op {
			kept = append(kept, st)
		}
	}
	f.rules = kept
}

// Reset removes every armed rule.
func (f *FaultStore) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Fired reports whether any rule for the named object and op has fired.
func (f *FaultStore) Fired(name string, op FaultOp) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, st := range f.rules {
		if st.Name == name && st.Op == op && st.fired {
			return true
		}
	}
	return false
}

// match returns the first armed rule for the named object and op.
func (f *FaultStore) match(name string, op FaultOp) *faultState {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, st := range f.rules {
		if st.Name == name && st.Op == op {
			return st
		}
	}
	return nil
}

// filterWrite applies a write-side rule to an outgoing chunk: it returns how
// many bytes of p should reach the underlying writer and the error to report
// after they do. Latched rules fail immediately.
func (f *FaultStore) filterWrite(st *faultState, p []byte) (int, error) {
	if st == nil {
		return len(p), nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if st.fired {
		return 0, st.error()
	}
	if st.pos+int64(len(p)) <= st.Offset {
		st.pos += int64(len(p))
		return len(p), nil
	}
	n := st.Offset - st.pos
	st.pos = st.Offset
	st.fired = true
	return int(n), st.error()
}

// --- wrapped object surface -------------------------------------------------

// ObjectPath passes through to the underlying store.
func (f *FaultStore) ObjectPath(name string) string { return f.store.ObjectPath(name) }

// ListObjects passes through to the underlying store.
func (f *FaultStore) ListObjects(prefix string) ([]string, error) {
	return f.store.ListObjects(prefix)
}

// SweepTempObjects passes through to the underlying store.
func (f *FaultStore) SweepTempObjects() (int, error) { return f.store.SweepTempObjects() }

// RemoveObject passes through to the underlying store.
func (f *FaultStore) RemoveObject(name string) error { return f.store.RemoveObject(name) }

// ObjectAppender wraps the underlying appender with any armed FaultAppend
// rule for name.
func (f *FaultStore) ObjectAppender(name string) (AppendObject, error) {
	a, err := f.store.ObjectAppender(name)
	if err != nil {
		return nil, err
	}
	return &faultAppend{AppendObject: a, f: f, name: name}, nil
}

type faultAppend struct {
	AppendObject
	f    *FaultStore
	name string
}

func (a *faultAppend) Write(p []byte) (int, error) {
	n, ferr := a.f.filterWrite(a.f.match(a.name, FaultAppend), p)
	wrote := 0
	if n > 0 {
		var err error
		wrote, err = a.AppendObject.Write(p[:n])
		if err != nil {
			return wrote, err
		}
	}
	if ferr != nil {
		return wrote, fmt.Errorf("lake: append %s: %w", a.name, ferr)
	}
	return wrote, nil
}

// ObjectWriter wraps the underlying staged writer with any armed FaultWrite
// rule for name. A fired rule aborts the stage on Close, so the previous
// object version survives — the same outcome as a crash mid-replace.
func (f *FaultStore) ObjectWriter(name string) (io.WriteCloser, error) {
	w, err := f.store.ObjectWriter(name)
	if err != nil {
		return nil, err
	}
	return &faultWrite{w: w, f: f, name: name}, nil
}

type faultWrite struct {
	w      io.WriteCloser
	f      *FaultStore
	name   string
	failed bool
}

func (w *faultWrite) Write(p []byte) (int, error) {
	n, ferr := w.f.filterWrite(w.f.match(w.name, FaultWrite), p)
	wrote := 0
	if n > 0 {
		var err error
		wrote, err = w.w.Write(p[:n])
		if err != nil {
			return wrote, err
		}
	}
	if ferr != nil {
		w.failed = true
		return wrote, fmt.Errorf("lake: write %s: %w", w.name, ferr)
	}
	return wrote, nil
}

func (w *faultWrite) Close() error {
	if w.failed {
		w.Abort()
		return fmt.Errorf("lake: publish %s: %w", w.name, ErrInjected)
	}
	return w.w.Close()
}

// Abort drops the staged write, mirroring the underlying writer.
func (w *faultWrite) Abort() {
	if ab, ok := w.w.(interface{ Abort() }); ok {
		ab.Abort()
	} else {
		w.w.Close()
	}
}

// ObjectReader wraps the underlying reader with any armed FaultRead rule for
// name.
func (f *FaultStore) ObjectReader(name string) (io.ReadCloser, error) {
	r, err := f.store.ObjectReader(name)
	if err != nil {
		return nil, err
	}
	return &faultRead{r: r, f: f, name: name}, nil
}

type faultRead struct {
	r    io.ReadCloser
	f    *FaultStore
	name string
}

func (r *faultRead) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	st := r.f.match(r.name, FaultRead)
	if st == nil {
		return n, err
	}
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	if st.fired && !st.Corrupt {
		return 0, st.error()
	}
	if st.Corrupt {
		if !st.fired && st.Offset >= st.pos && st.Offset < st.pos+int64(n) {
			p[st.Offset-st.pos] ^= 0xFF
			st.fired = true
		}
		st.pos += int64(n)
		return n, err
	}
	if st.pos+int64(n) > st.Offset {
		n = int(st.Offset - st.pos)
		st.pos = st.Offset
		st.fired = true
		return n, st.error()
	}
	st.pos += int64(n)
	return n, err
}

func (r *faultRead) Close() error { return r.r.Close() }
