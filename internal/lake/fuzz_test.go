package lake

// Fuzz targets for the extract CSV decoders. Extract files come off the
// shared lake and may be truncated by a killed writer; the decoders must
// reject malformed rows with an error — never panic — and every accepted row
// must survive an encode/decode round trip.

import (
	"math"
	"strings"
	"testing"
)

func FuzzParseRow(f *testing.F) {
	f.Add("srv-001,26280000,12.500,26280480,26280540")
	f.Add("srv-001,26280000,-1.000,26280480,26280540") // missing observation
	f.Add("a,b,c,d,e")
	f.Add(",,,,")
	f.Add("too,few")
	f.Add("srv,1,2,3,4,5,6")
	f.Add("srv,9223372036854775807,0.001,0,0")
	f.Add("srv,1,NaN,3,4")
	f.Add(Header)

	f.Fuzz(func(t *testing.T, line string) {
		row, err := ParseRow(line)
		if err != nil {
			return
		}
		if math.IsNaN(row.CPUPct) || math.IsInf(row.CPUPct, 0) {
			// NaN/Inf parse as valid floats; they must still encode and
			// re-parse without panicking (AppendRow formats them as text
			// that ParseRow rejects — that is fine, only a panic is not).
			buf := AppendRow(nil, &row)
			_, _ = ParseRow(strings.TrimSuffix(string(buf), "\n"))
			return
		}
		if strings.Contains(row.ServerID, ",") {
			// Unsplittable ambiguity: a comma inside the first field would
			// have shifted the field count, so ParseRow cannot accept it.
			t.Fatalf("accepted server id with comma: %q", row.ServerID)
		}
		// Round trip: encode and re-parse. The float is re-formatted at
		// millipercent precision, so compare after one round.
		buf := AppendRow(nil, &row)
		again, err := ParseRow(strings.TrimSuffix(string(buf), "\n"))
		if err != nil {
			t.Fatalf("re-parse of encoded row failed: %v\nrow: %+v\nenc: %q", err, row, buf)
		}
		buf2 := AppendRow(nil, &again)
		if string(buf) != string(buf2) {
			t.Fatalf("row not stable after one encode round: %q vs %q", buf, buf2)
		}
	})
}

func FuzzScanRows(f *testing.F) {
	f.Add(Header + "\nsrv-001,26280000,12.500,26280480,26280540\n")
	f.Add(Header + "\n")
	f.Add("")
	f.Add("not,the,header\nsrv,1,2,3,4\n")
	f.Add(Header + "\nsrv,garbage,2,3,4\n")
	f.Add(Header + "\n" + strings.Repeat("srv,1,2.000,3,4\n", 64))

	f.Fuzz(func(t *testing.T, data string) {
		rows := 0
		err := ScanRows(strings.NewReader(data), func(Row) error {
			rows++
			return nil
		})
		if err != nil && rows > 0 && !strings.HasPrefix(data, Header+"\n") {
			// A file that fails the header check must deliver zero rows.
			t.Fatalf("header-rejected file still delivered %d rows", rows)
		}
	})
}
