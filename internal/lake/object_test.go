package lake

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestObjectRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.ObjectWriter("stream/rings.snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello rings")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := s.ObjectReader("stream/rings.snap")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if string(got) != "hello rings" {
		t.Fatalf("read %q", got)
	}
	if err := s.RemoveObject("stream/rings.snap"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ObjectReader("stream/rings.snap"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after remove: err = %v, want ErrNotFound", err)
	}
	// Idempotent removal.
	if err := s.RemoveObject("stream/rings.snap"); err != nil {
		t.Fatal(err)
	}
}

func TestObjectMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ObjectReader("no/such/object"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestObjectBadNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "/abs", "../escape", "a/../../b", "x.tmp"} {
		if _, err := s.ObjectWriter(name); !errors.Is(err, ErrBadObjectName) {
			t.Errorf("ObjectWriter(%q) err = %v, want ErrBadObjectName", name, err)
		}
		if _, err := s.ObjectReader(name); !errors.Is(err, ErrBadObjectName) {
			t.Errorf("ObjectReader(%q) err = %v, want ErrBadObjectName", name, err)
		}
	}
	if p := s.ObjectPath("../escape"); p != "" {
		t.Errorf("ObjectPath escaped the root: %q", p)
	}
}

// TestObjectAtomicReplace pins the crash-safety property the ring snapshots
// rely on: an in-progress write never disturbs the published object, and a
// completed Close replaces it atomically.
func TestObjectAtomicReplace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	write := func(content string) {
		w, err := s.ObjectWriter("snap")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("v1")

	// Stage a second write but do not close: the published object must still
	// read as v1.
	w, err := s.ObjectWriter("snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("v2-partial")); err != nil {
		t.Fatal(err)
	}
	r, err := s.ObjectReader("snap")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != "v1" {
		t.Fatalf("mid-write read %q, want v1", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = s.ObjectReader("snap")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(r)
	r.Close()
	if string(got) != "v2-partial" {
		t.Fatalf("after close read %q", got)
	}

	// No staging litter left behind.
	entries, err := os.ReadDir(filepath.Dir(s.ObjectPath("snap")))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), objectTempSuffix) {
			t.Errorf("staging file %s left behind", e.Name())
		}
	}
}

// TestObjectConcurrentWriters: simultaneous writers of the same object each
// stage to their own temp file, so the published object is always one
// writer's complete bytes — never an interleaving.
func TestObjectConcurrentWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	contents := make([]string, writers)
	for i := range contents {
		contents[i] = strings.Repeat(string(rune('a'+i)), 4096)
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := s.ObjectWriter("shared")
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := io.WriteString(w, contents[i]); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	r, err := s.ObjectReader("shared")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	whole := false
	for _, c := range contents {
		if string(got) == c {
			whole = true
		}
	}
	if !whole {
		t.Fatalf("published object is not any single writer's bytes (len %d)", len(got))
	}
}
