package lake

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Append-only objects: the lake surface backing write-ahead logs. Unlike
// ObjectWriter's stage-and-rename replace, an AppendObject writes in place at
// the end of the named object, so a crash mid-write leaves every previously
// synced byte intact and at most one torn frame at the tail — exactly the
// failure shape a log replayer is built to stop at.

// AppendObject is an open append-only handle to a named object. Writes always
// land at the current end of the object; Sync makes everything written so far
// durable; Truncate rolls the object back to a known-good size (recovering
// from a partial write, or resetting a log once its contents are covered by a
// snapshot). Not safe for concurrent use — callers serialize access.
type AppendObject interface {
	io.Writer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Truncate shrinks the object to size bytes. Subsequent writes append at
	// the new end.
	Truncate(size int64) error
	// Size reports the object's current length in bytes.
	Size() (int64, error)
	// Close releases the handle without syncing unsynced bytes.
	Close() error
}

// appendObject is an os.File with a Size method.
type appendObject struct {
	*os.File
}

func (a appendObject) Size() (int64, error) {
	fi, err := a.Stat()
	if err != nil {
		return 0, fmt.Errorf("lake: stat append object: %w", err)
	}
	return fi.Size(), nil
}

// ObjectAppender opens the named object for appending, creating it (and
// parent directories) when absent. The caller must Close it.
func (s *Store) ObjectAppender(name string) (AppendObject, error) {
	p, err := s.objectPath(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("lake: create object dir: %w", err)
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lake: open append object: %w", err)
	}
	return appendObject{f}, nil
}

// isTempName reports whether base is an in-progress staging file left by
// ObjectWriter — "<name>.tmp" followed by the random digits os.CreateTemp
// appends. Staging files are invisible to ListObjects and reclaimed by
// SweepTempObjects.
func isTempName(base string) bool {
	i := strings.LastIndex(base, objectTempSuffix)
	if i < 0 {
		return false
	}
	for _, r := range base[i+len(objectTempSuffix):] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// ListObjects returns the names of stored objects with the given
// slash-separated prefix, sorted. In-progress staging files are never listed
// — a half-written object does not exist yet. A prefix matching nothing
// (including a nonexistent directory) returns an empty list, not an error.
func (s *Store) ListObjects(prefix string) ([]string, error) {
	// Only walk the deepest directory the prefix pins down, not the whole
	// lake — the extract partitions can dwarf the object namespace.
	dir := s.root
	if i := strings.LastIndex(prefix, "/"); i >= 0 {
		dir = filepath.Join(s.root, filepath.FromSlash(prefix[:i]))
	}
	var out []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() || isTempName(d.Name()) {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		if name := filepath.ToSlash(rel); strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lake: list objects: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

// SweepTempObjects removes staging files orphaned by a crash between
// temp-write and rename, returning how many were reclaimed. Run it on boot,
// before any writers are live: a staging file belonging to an in-flight write
// would be swept too.
func (s *Store) SweepTempObjects() (int, error) {
	removed := 0
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() || !isTempName(d.Name()) {
			return nil
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
		removed++
		return nil
	})
	if err != nil {
		return removed, fmt.Errorf("lake: sweep temp objects: %w", err)
	}
	return removed, nil
}
