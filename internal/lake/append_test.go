package lake

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAppendObjectRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.ObjectAppender("stream/wal/shard-0000.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("head")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("-tail")); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := a.Size(); err != nil || n != 9 {
		t.Fatalf("Size = %d, %v; want 9", n, err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen appends after the existing bytes.
	a, err = s.ObjectAppender("stream/wal/shard-0000.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	// Truncate rolls back to a known-good size; the next write appends there.
	if err := a.Truncate(9); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := s.ObjectReader("stream/wal/shard-0000.wal")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != "head-tail!" {
		t.Fatalf("read %q, want %q", got, "head-tail!")
	}
}

func TestListObjects(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"stream/wal/shard-0001.wal", "stream/wal/shard-0000.wal", "stream/rings/shard-0000.snap", "other/x"} {
		w, err := s.ObjectWriter(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// An abandoned staged write must not be listed.
	if _, err := s.ObjectWriter("stream/wal/shard-0002.wal"); err != nil {
		t.Fatal(err)
	}

	got, err := s.ListObjects("stream/wal/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"stream/wal/shard-0000.wal", "stream/wal/shard-0001.wal"}
	if len(got) != len(want) {
		t.Fatalf("ListObjects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ListObjects = %v, want %v", got, want)
		}
	}

	// Nonexistent prefix: empty, no error.
	if got, err := s.ListObjects("no/such/prefix/"); err != nil || len(got) != 0 {
		t.Fatalf("ListObjects(missing) = %v, %v; want empty", got, err)
	}
}

// TestObjectReplaceCrashCleanup pins the replace semantics under a crash
// between temp-write and rename: the previous version stays live, the stale
// staging file is invisible to every read path and reclaimed on the next
// boot's sweep.
func TestObjectReplaceCrashCleanup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.ObjectWriter("stream/rings/shard-0000.snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "v1-complete"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" mid-replace: stage a new version, never Close.
	w, err = s.ObjectWriter("stream/rings/shard-0000.snap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "v2-par"); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Dir(s.ObjectPath("stream/rings/shard-0000.snap"))
	temps := func() []string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range entries {
			if isTempName(e.Name()) {
				out = append(out, e.Name())
			}
		}
		return out
	}
	if got := temps(); len(got) != 1 {
		t.Fatalf("staging files on disk = %v, want exactly 1", got)
	}

	// The stale temp is never mistaken for a live object.
	if got, err := s.ListObjects("stream/rings/"); err != nil || len(got) != 1 || got[0] != "stream/rings/shard-0000.snap" {
		t.Fatalf("ListObjects = %v, %v; want just the published snapshot", got, err)
	}
	if _, err := s.ObjectReader("stream/rings/shard-0000.snap" + objectTempSuffix + "123"); !errors.Is(err, ErrBadObjectName) {
		t.Fatalf("reading a temp name: err = %v, want ErrBadObjectName", err)
	}

	// The previous version is intact.
	r, err := s.ObjectReader("stream/rings/shard-0000.snap")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != "v1-complete" {
		t.Fatalf("read %q, want the pre-crash version", got)
	}

	// Next boot: the sweep reclaims the orphan, the object survives.
	n, err := s.SweepTempObjects()
	if err != nil || n != 1 {
		t.Fatalf("SweepTempObjects = %d, %v; want 1", n, err)
	}
	if got := temps(); len(got) != 0 {
		t.Fatalf("staging files after sweep = %v, want none", got)
	}
	r, err = s.ObjectReader("stream/rings/shard-0000.snap")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(r)
	r.Close()
	if string(got) != "v1-complete" {
		t.Fatalf("after sweep read %q, want the pre-crash version", got)
	}
}

func TestFaultStoreTornAppend(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(s)
	fs.Arm(FaultRule{Name: "wal", Op: FaultAppend, Offset: 5})

	a, err := fs.ObjectAppender("wal")
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %d, %v; want 5 bytes then ErrInjected", n, err)
	}
	// Latched: the disk is still full.
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("after firing: err = %v, want ErrInjected", err)
	}
	a.Close()

	fs.Disarm("wal", FaultAppend)
	a, err = fs.ObjectAppender("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	a.Close()

	r, err := s.ObjectReader("wal")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != "01234ok" {
		t.Fatalf("on disk %q, want exactly the pre-fault prefix plus the retry", got)
	}
}

func TestFaultStoreShortAndCorruptRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.ObjectWriter("obj")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "0123456789")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	fs := NewFaultStore(s)
	fs.Arm(FaultRule{Name: "obj", Op: FaultRead, Offset: 4, Err: io.ErrUnexpectedEOF})
	r, err := fs.ObjectReader("obj")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if string(got) != "0123" || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read = %q, %v; want 4 bytes then ErrUnexpectedEOF", got, err)
	}

	fs.Reset()
	fs.Arm(FaultRule{Name: "obj", Op: FaultRead, Offset: 7, Corrupt: true})
	r, err = fs.ObjectReader("obj")
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[7] == '7' || !strings.HasPrefix(string(got), "0123456") {
		t.Fatalf("corrupt read = %q, want byte 7 flipped and the rest intact", got)
	}

	// A staged replace that faults mid-write must abort, keeping the old
	// version.
	fs.Reset()
	fs.Arm(FaultRule{Name: "obj", Op: FaultWrite, Offset: 2})
	fw, err := fs.ObjectWriter("obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(fw, "NEWCONTENT"); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted replace write err = %v, want ErrInjected", err)
	}
	if err := fw.Close(); err == nil {
		t.Fatal("Close after faulted write succeeded; want failure")
	}
	r2, err := s.ObjectReader("obj")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = io.ReadAll(r2)
	r2.Close()
	if string(got) != "0123456789" {
		t.Fatalf("after faulted replace: %q, want the old version intact", got)
	}
}
