package lake

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func tempStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenCreatesRoot(t *testing.T) {
	dir := t.TempDir() + "/nested/lake"
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root() != dir {
		t.Errorf("Root = %q", s.Root())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := tempStore(t)
	w, err := s.Writer("ds", "westus", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "hello\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Reader("ds", "westus", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil || string(data) != "hello\n" {
		t.Errorf("read %q err %v", data, err)
	}
	sz, err := s.Size("ds", "westus", 3)
	if err != nil || sz != 6 {
		t.Errorf("Size = %d err %v", sz, err)
	}
}

func TestReaderNotFound(t *testing.T) {
	s := tempStore(t)
	if _, err := s.Reader("ds", "nowhere", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := s.Size("ds", "nowhere", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size err = %v, want ErrNotFound", err)
	}
}

func TestRegionsAndWeeks(t *testing.T) {
	s := tempStore(t)
	for _, rg := range []string{"eastus", "westeu"} {
		for _, wk := range []int{0, 2} {
			w, err := s.Writer("ds", rg, wk)
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
		}
	}
	regions, err := s.Regions("ds")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 || regions[0] != "eastus" || regions[1] != "westeu" {
		t.Errorf("Regions = %v", regions)
	}
	weeks, err := s.Weeks("ds", "eastus")
	if err != nil {
		t.Fatal(err)
	}
	if len(weeks) != 2 || weeks[0] != 0 || weeks[1] != 2 {
		t.Errorf("Weeks = %v", weeks)
	}
	// Missing dataset/region yield empty, not errors.
	if rs, err := s.Regions("nope"); err != nil || rs != nil {
		t.Errorf("missing dataset: %v %v", rs, err)
	}
	if ws, err := s.Weeks("ds", "nope"); err != nil || ws != nil {
		t.Errorf("missing region: %v %v", ws, err)
	}
}

func TestRowRoundTrip(t *testing.T) {
	rows := []Row{
		{ServerID: "a", TimestampMin: 100, CPUPct: 42.125, BackupStartMin: 10, BackupEndMin: 20},
		{ServerID: "b", TimestampMin: 105, CPUPct: -1, BackupStartMin: 0, BackupEndMin: 0},
	}
	var buf bytes.Buffer
	if err := WriteRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var got []Row
	err := ScanRows(&buf, func(r Row) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0] != rows[0] || got[1] != rows[1] {
		t.Errorf("round trip mismatch: %+v vs %+v", got, rows)
	}
}

func TestParseRowErrors(t *testing.T) {
	bad := []string{
		"only,four,fields,here",
		"srv,notanum,1.0,0,0",
		"srv,100,notanum,0,0",
		"srv,100,1.0,x,0",
		"srv,100,1.0,0,x",
	}
	for _, line := range bad {
		if _, err := ParseRow(line); err == nil {
			t.Errorf("ParseRow(%q) should fail", line)
		}
	}
}

func TestScanRowsHeaderChecks(t *testing.T) {
	if err := ScanRows(strings.NewReader(""), nil); err == nil {
		t.Error("empty file should error")
	}
	if err := ScanRows(strings.NewReader("wrong,header\n"), nil); err == nil {
		t.Error("bad header should error")
	}
}

func TestScanRowsStopsOnCallbackError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRows(&buf, []Row{{ServerID: "a"}, {ServerID: "b"}}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	stop := errors.New("stop")
	err := ScanRows(&buf, func(Row) error {
		calls++
		return stop
	})
	if !errors.Is(err, stop) || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestScanRowsReportsLineNumbers(t *testing.T) {
	data := Header + "\nsrv,100,1.0,0,0\ngarbage line\n"
	err := ScanRows(strings.NewReader(data), func(Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line number", err)
	}
}

// Property: AppendRow/ParseRow round-trips arbitrary rows (within the fixed
// 3-decimal CPU precision).
func TestPropertyRowRoundTrip(t *testing.T) {
	f := func(id uint16, ts int32, cpuMilli int16, bs, be int32) bool {
		r := Row{
			ServerID:       "srv-" + strings.Repeat("x", int(id%8)),
			TimestampMin:   int64(ts),
			CPUPct:         float64(cpuMilli) / 1000,
			BackupStartMin: int64(bs),
			BackupEndMin:   int64(be),
		}
		line := string(AppendRow(nil, &r))
		got, err := ParseRow(strings.TrimSuffix(line, "\n"))
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
