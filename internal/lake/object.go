package lake

import (
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// Named auxiliary objects: lake storage for state that is not a weekly
// telemetry extract — ring snapshots from the stream layer, exported
// artifacts, and similar. Objects live under the same root as the extract
// partitions but are addressed by a caller-chosen slash-separated name
// instead of (dataset, region, week).

// ErrBadObjectName is returned for object names that would escape the lake
// root or collide with the temp-staging suffix.
var ErrBadObjectName = fmt.Errorf("lake: bad object name")

// objectTempSuffix marks in-progress object writes (each writer stages to
// its own unique "<name>.tmp<random>" file; Close renames the staged file
// over the final path). Readers never observe a half-written object, a
// crash mid-write leaves the previous version intact, and concurrent
// writers of the same object never share a staging file — they serialize on
// the final rename, last Close wins whole.
const objectTempSuffix = ".tmp"

// objectPath validates name and resolves it under the root. Names are
// slash-separated relative paths; absolute paths, empty names, parent
// references and the staging suffix are rejected.
func (s *Store) objectPath(name string) (string, error) {
	// isTempName also rejects the bare ".tmp" suffix, plus the suffixed forms
	// os.CreateTemp produces — a staging file must never be addressable as a
	// live object, or a crashed half-write could be read back as real data.
	if name == "" || strings.HasPrefix(name, "/") || isTempName(path.Base(name)) {
		return "", fmt.Errorf("%w: %q", ErrBadObjectName, name)
	}
	clean := filepath.Clean(filepath.FromSlash(name))
	if clean == "." || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("%w: %q", ErrBadObjectName, name)
	}
	return filepath.Join(s.root, clean), nil
}

// ObjectPath returns the file-system path an object name resolves to, or ""
// for an invalid name. Diagnostics only; use ObjectWriter/ObjectReader for
// access.
func (s *Store) ObjectPath(name string) string {
	p, err := s.objectPath(name)
	if err != nil {
		return ""
	}
	return p
}

// objectWriter stages writes to a temp file and renames it into place on
// Close, so the object is replaced atomically.
type objectWriter struct {
	f     *os.File
	final string
	done  bool
}

func (w *objectWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *objectWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(w.f.Name())
		return fmt.Errorf("lake: sync object: %w", err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return fmt.Errorf("lake: close object: %w", err)
	}
	if err := os.Rename(w.f.Name(), w.final); err != nil {
		os.Remove(w.f.Name())
		return fmt.Errorf("lake: publish object: %w", err)
	}
	return nil
}

// Abort drops the staged write without publishing it. Safe after Close
// (no-op).
func (w *objectWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.f.Name())
}

// ObjectWriter opens a writer for the named object, creating parent
// directories as needed. The write is atomic: bytes are staged to a temp
// file and renamed over the final path on Close, so a crash mid-write
// leaves any previous version of the object intact and readers never see a
// torn object. The caller must Close it.
func (s *Store) ObjectWriter(name string) (io.WriteCloser, error) {
	p, err := s.objectPath(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("lake: create object dir: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(p), filepath.Base(p)+objectTempSuffix+"*")
	if err != nil {
		return nil, fmt.Errorf("lake: stage object: %w", err)
	}
	return &objectWriter{f: f, final: p}, nil
}

// ObjectReader opens the named object for reading; ErrNotFound when it does
// not exist. The caller must Close it.
func (s *Store) ObjectReader(name string) (io.ReadCloser, error) {
	p, err := s.objectPath(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: object %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("lake: open object: %w", err)
	}
	return f, nil
}

// RemoveObject deletes the named object; missing objects are not an error
// (removal is idempotent).
func (s *Store) RemoveObject(name string) error {
	p, err := s.objectPath(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("lake: remove object: %w", err)
	}
	return nil
}
