// Package lake is the Azure Data Lake Store analog: a file-system-backed
// store partitioned by dataset, region and week, holding the CSV extracts
// the Load Extraction module produces and the AML pipeline consumes
// (Section 2.2).
//
// The paper's input files "contain server identifier, timestamp in minutes,
// average user CPU load percentage per five minutes, default backup start
// and end timestamps"; Row and the CSV codec implement exactly that layout.
//
// Beyond the weekly extracts, the lake stores named auxiliary objects (see
// object.go) — notably the stream layer's ring snapshots — with atomic
// replace semantics: an object write is staged and renamed into place on
// Close, so readers never observe a torn object and a crash mid-write
// leaves the previous version intact.
//
// Concurrency: a Store is safe for concurrent use as far as the underlying
// file system is — distinct objects never interfere, and concurrent writers
// of the same object serialize on the final rename (last Close wins whole).
package lake

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNotFound is returned when a requested object does not exist.
var ErrNotFound = errors.New("lake: object not found")

// Store is a partitioned object store rooted at a directory.
type Store struct {
	root string
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lake: open root: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Path returns the object path for (dataset, region, week).
func (s *Store) Path(dataset, region string, week int) string {
	return filepath.Join(s.root, dataset, region, fmt.Sprintf("week-%04d.csv", week))
}

// Writer opens a buffered writer for the object, creating partitions as
// needed. The caller must Close it.
func (s *Store) Writer(dataset, region string, week int) (io.WriteCloser, error) {
	p := s.Path(dataset, region, week)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("lake: create partition: %w", err)
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("lake: create object: %w", err)
	}
	return &bufWriteCloser{Writer: bufio.NewWriterSize(f, 1<<20), f: f}, nil
}

type bufWriteCloser struct {
	*bufio.Writer
	f *os.File
}

func (b *bufWriteCloser) Close() error {
	if err := b.Flush(); err != nil {
		b.f.Close()
		return err
	}
	return b.f.Close()
}

// Reader opens the object for reading. The caller must Close it.
func (s *Store) Reader(dataset, region string, week int) (io.ReadCloser, error) {
	f, err := os.Open(s.Path(dataset, region, week))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s/%s/week-%04d", ErrNotFound, dataset, region, week)
		}
		return nil, fmt.Errorf("lake: open object: %w", err)
	}
	return f, nil
}

// Size returns the object size in bytes.
func (s *Store) Size(dataset, region string, week int) (int64, error) {
	fi, err := os.Stat(s.Path(dataset, region, week))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s/%s/week-%04d", ErrNotFound, dataset, region, week)
		}
		return 0, err
	}
	return fi.Size(), nil
}

// Regions lists the regions present under a dataset, sorted.
func (s *Store) Regions(dataset string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, dataset))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Weeks lists the week numbers present for (dataset, region), sorted.
func (s *Store) Weeks(dataset, region string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, dataset, region))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "week-") || !strings.HasSuffix(name, ".csv") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "week-"), ".csv"))
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// Row is one telemetry record in the weekly extract files: the per-five-
// minute average user CPU load of one server, plus the server's current
// default backup window.
type Row struct {
	ServerID string
	// TimestampMin is the observation time in minutes since the Unix epoch
	// (the paper's files carry "timestamp in minutes").
	TimestampMin int64
	// CPUPct is the average user CPU load percentage over the interval;
	// negative values encode missing observations.
	CPUPct float64
	// BackupStartMin/BackupEndMin delimit the server's default backup
	// window in minutes since the Unix epoch.
	BackupStartMin int64
	BackupEndMin   int64
}

// Header is the first line of every extract file.
const Header = "server_id,timestamp_min,cpu_pct,backup_start_min,backup_end_min"

// WriteRows streams rows as CSV, header first.
func WriteRows(w io.Writer, rows []Row) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Header + "\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 96)
	for i := range rows {
		buf = AppendRow(buf[:0], &rows[i])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendRow appends r's CSV encoding (with trailing newline) to buf.
func AppendRow(buf []byte, r *Row) []byte {
	buf = append(buf, r.ServerID...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, r.TimestampMin, 10)
	buf = append(buf, ',')
	buf = strconv.AppendFloat(buf, r.CPUPct, 'f', 3, 64)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, r.BackupStartMin, 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, r.BackupEndMin, 10)
	return append(buf, '\n')
}

// ParseRow decodes one CSV line (no trailing newline).
func ParseRow(line string) (Row, error) {
	var r Row
	fields := strings.Split(line, ",")
	if len(fields) != 5 {
		return r, fmt.Errorf("lake: row has %d fields, want 5: %q", len(fields), line)
	}
	r.ServerID = fields[0]
	var err error
	if r.TimestampMin, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return r, fmt.Errorf("lake: bad timestamp %q: %w", fields[1], err)
	}
	if r.CPUPct, err = strconv.ParseFloat(fields[2], 64); err != nil {
		return r, fmt.Errorf("lake: bad cpu %q: %w", fields[2], err)
	}
	if r.BackupStartMin, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
		return r, fmt.Errorf("lake: bad backup start %q: %w", fields[3], err)
	}
	if r.BackupEndMin, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
		return r, fmt.Errorf("lake: bad backup end %q: %w", fields[4], err)
	}
	return r, nil
}

// ScanRows reads a CSV extract, invoking fn per row. It verifies the header
// and stops at the first malformed row, returning its error.
func ScanRows(r io.Reader, fn func(Row) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("lake: empty file")
	}
	if got := sc.Text(); got != Header {
		return fmt.Errorf("lake: bad header %q", got)
	}
	line := 1
	for sc.Scan() {
		line++
		row, err := ParseRow(sc.Text())
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return sc.Err()
}
