package simclock

import (
	"context"
	"sync"
	"time"
)

// Simulated is a manually advanced Clock. Time only moves when Advance,
// AdvanceTo, Step or Drive move it; timers and tickers due at or before the
// new time fire in timestamp order (ties broken by registration order), so a
// given sequence of advances produces exactly one firing order — the
// property the simulation harness's bit-identical-timeline guarantee rests
// on.
//
// Waiters() and BlockUntil() expose how many goroutines are parked on the
// clock, letting tests advance only once the code under test is actually
// waiting, without real sleeps.
type Simulated struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	timers  []*simTimer
	waiters int // goroutines parked in Sleep
	// waitCh is closed and replaced whenever waiters or timers change, so
	// BlockUntil can wait without polling.
	waitCh chan struct{}
	// autoSleep makes Sleep advance the clock by d instead of parking —
	// "run as fast as possible" mode for components that pace themselves
	// with Sleep (the pipeline cron).
	autoSleep bool
}

// NewSimulated returns a simulated clock reading t.
func NewSimulated(t time.Time) *Simulated {
	return &Simulated{now: t, waitCh: make(chan struct{})}
}

// AutoAdvanceSleeps makes Sleep advance the clock immediately instead of
// blocking until another goroutine advances it. Tickers and After timers
// due within the slept span still fire in order.
func (s *Simulated) AutoAdvanceSleeps() {
	s.mu.Lock()
	s.autoSleep = true
	s.mu.Unlock()
}

type simTimer struct {
	at     time.Time
	seq    uint64
	period time.Duration // 0 for one-shot
	ch     chan time.Time
	// sleeper timers count toward Waiters while a goroutine is parked on
	// them; After timers do not (nothing is necessarily receiving).
	sleeper bool
	stopped bool
}

// Now returns the current simulated time.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep parks the calling goroutine until the clock advances past d (or ctx
// is done). In AutoAdvanceSleeps mode it advances the clock itself and
// returns immediately.
func (s *Simulated) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	s.mu.Lock()
	if s.autoSleep {
		target := s.now.Add(d)
		s.advanceLocked(target)
		s.mu.Unlock()
		return nil
	}
	t := s.addTimerLocked(d, 0, true)
	s.waiters++
	s.notifyLocked()
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		s.waiters--
		t.stopped = true
		s.removeLocked(t)
		s.notifyLocked()
		s.mu.Unlock()
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.ch:
		return nil
	}
}

// After returns a capacity-1 channel that receives the simulated time once
// the clock has advanced past d.
func (s *Simulated) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- s.now
		return ch
	}
	t := s.addTimerLocked(d, 0, false)
	s.notifyLocked()
	return t.ch
}

// NewTicker returns a simulated ticker firing every d of simulated time.
// Ticks a slow receiver misses are coalesced, as with time.Ticker.
func (s *Simulated) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("simclock: non-positive ticker interval")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.addTimerLocked(d, d, false)
	s.notifyLocked()
	return &simTicker{clock: s, t: t}
}

type simTicker struct {
	clock *Simulated
	t     *simTimer
}

func (st *simTicker) C() <-chan time.Time { return st.t.ch }

func (st *simTicker) Stop() {
	st.clock.mu.Lock()
	st.t.stopped = true
	st.clock.removeLocked(st.t)
	st.clock.notifyLocked()
	st.clock.mu.Unlock()
}

// Advance moves the clock forward by d, firing every timer and ticker due
// in the crossed span in timestamp order.
func (s *Simulated) Advance(d time.Duration) {
	s.mu.Lock()
	s.advanceLocked(s.now.Add(d))
	s.mu.Unlock()
}

// AdvanceTo moves the clock forward to t (no-op if t is not after now).
func (s *Simulated) AdvanceTo(t time.Time) {
	s.mu.Lock()
	s.advanceLocked(t)
	s.mu.Unlock()
}

// Step advances the clock to the next pending timer and fires it, returning
// the new time and true; with no pending timers it returns now and false.
func (s *Simulated) Step() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.earliestLocked()
	if t == nil {
		return s.now, false
	}
	s.advanceLocked(t.at)
	return s.now, true
}

// Waiters reports how many goroutines are currently parked in Sleep plus
// pending After timers and live tickers — i.e. how many things an Advance
// could wake.
func (s *Simulated) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

// Sleepers reports only goroutines parked in Sleep.
func (s *Simulated) Sleepers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters
}

// BlockUntil returns once at least n timers/tickers/sleepers are registered
// on the clock. Tests use it to advance only after the code under test has
// started waiting.
func (s *Simulated) BlockUntil(n int) {
	for {
		s.mu.Lock()
		if len(s.timers) >= n {
			s.mu.Unlock()
			return
		}
		ch := s.waitCh
		s.mu.Unlock()
		<-ch
	}
}

// Drive advances the clock in lockstep with the wall clock, scale simulated
// seconds per wall second, until ctx is done. It implements the time-scale
// factor mode: a system wired to this clock experiences time scale× faster
// than real. Returns ctx.Err().
func (s *Simulated) Drive(ctx context.Context, scale float64) error {
	if scale <= 0 {
		scale = 1
	}
	const wallStep = time.Millisecond
	simStep := time.Duration(float64(wallStep) * scale)
	t := time.NewTicker(wallStep)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			s.Advance(simStep)
		}
	}
}

// --- internals (all require s.mu held) ---

func (s *Simulated) addTimerLocked(d, period time.Duration, sleeper bool) *simTimer {
	s.seq++
	t := &simTimer{at: s.now.Add(d), seq: s.seq, period: period, ch: make(chan time.Time, 1), sleeper: sleeper}
	s.timers = append(s.timers, t)
	return t
}

func (s *Simulated) removeLocked(t *simTimer) {
	for i, o := range s.timers {
		if o == t {
			s.timers = append(s.timers[:i], s.timers[i+1:]...)
			return
		}
	}
}

func (s *Simulated) notifyLocked() {
	close(s.waitCh)
	s.waitCh = make(chan struct{})
}

// earliestLocked returns the due-soonest timer, ties broken by seq.
func (s *Simulated) earliestLocked() *simTimer {
	var best *simTimer
	for _, t := range s.timers {
		if best == nil || t.at.Before(best.at) || (t.at.Equal(best.at) && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

func (s *Simulated) advanceLocked(target time.Time) {
	if !target.After(s.now) {
		return
	}
	for {
		t := s.earliestLocked()
		if t == nil || t.at.After(target) {
			break
		}
		s.now = t.at
		// Coalescing send: drop the tick if the receiver hasn't drained the
		// last one, matching time.Ticker semantics. One-shot timers always
		// land (fresh capacity-1 channel).
		select {
		case t.ch <- s.now:
		default:
		}
		if t.period > 0 {
			t.at = t.at.Add(t.period)
		} else {
			s.removeLocked(t)
		}
	}
	s.now = target
	s.notifyLocked()
}
