package simclock

import (
	"context"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSimulatedNowAndAdvance(t *testing.T) {
	s := NewSimulated(t0)
	if !s.Now().Equal(t0) {
		t.Fatalf("Now = %v, want %v", s.Now(), t0)
	}
	s.Advance(time.Hour)
	if !s.Now().Equal(t0.Add(time.Hour)) {
		t.Fatalf("Now = %v after Advance(1h)", s.Now())
	}
	s.AdvanceTo(t0) // backwards: no-op
	if !s.Now().Equal(t0.Add(time.Hour)) {
		t.Fatal("AdvanceTo must not move time backwards")
	}
}

func TestSimulatedAfterFiresInOrder(t *testing.T) {
	s := NewSimulated(t0)
	a := s.After(2 * time.Minute)
	b := s.After(time.Minute)
	s.Advance(time.Hour)
	// Both fired; each carries the simulated time it was due at.
	if at := <-b; !at.Equal(t0.Add(time.Minute)) {
		t.Fatalf("b fired at %v", at)
	}
	if at := <-a; !at.Equal(t0.Add(2 * time.Minute)) {
		t.Fatalf("a fired at %v", at)
	}
	// Non-positive delay fires immediately.
	select {
	case <-s.After(0):
	default:
		t.Fatal("After(0) must be immediately ready")
	}
}

func TestSimulatedTickerCoalesces(t *testing.T) {
	s := NewSimulated(t0)
	tk := s.NewTicker(time.Second)
	defer tk.Stop()
	// Cross 10 intervals without draining: exactly one tick is pending.
	s.Advance(10 * time.Second)
	<-tk.C()
	select {
	case <-tk.C():
		t.Fatal("ticks must coalesce, not queue")
	default:
	}
	// Draining between advances sees every tick.
	s.Advance(time.Second)
	if at := <-tk.C(); !at.Equal(t0.Add(11 * time.Second)) {
		t.Fatalf("tick at %v", at)
	}
}

func TestSimulatedTickerStop(t *testing.T) {
	s := NewSimulated(t0)
	tk := s.NewTicker(time.Second)
	tk.Stop()
	s.Advance(time.Minute)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
	if n := s.Waiters(); n != 0 {
		t.Fatalf("Waiters = %d after Stop", n)
	}
}

func TestSimulatedSleepWakesOnAdvance(t *testing.T) {
	s := NewSimulated(t0)
	done := make(chan error, 1)
	go func() { done <- s.Sleep(context.Background(), time.Minute) }()
	s.BlockUntil(1)
	if n := s.Sleepers(); n != 1 {
		t.Fatalf("Sleepers = %d", n)
	}
	s.Advance(time.Minute)
	if err := <-done; err != nil {
		t.Fatalf("Sleep = %v", err)
	}
	if n := s.Waiters(); n != 0 {
		t.Fatalf("Waiters = %d after wake", n)
	}
}

func TestSimulatedSleepHonorsContext(t *testing.T) {
	s := NewSimulated(t0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Sleep(ctx, time.Hour) }()
	s.BlockUntil(1)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
}

func TestSimulatedAutoAdvanceSleeps(t *testing.T) {
	s := NewSimulated(t0)
	s.AutoAdvanceSleeps()
	if err := s.Sleep(context.Background(), 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	if !s.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Fatalf("auto sleep did not advance: %v", s.Now())
	}
}

func TestSimulatedStep(t *testing.T) {
	s := NewSimulated(t0)
	if _, ok := s.Step(); ok {
		t.Fatal("Step with no timers must report false")
	}
	_ = s.After(time.Minute)
	_ = s.After(time.Second)
	now, ok := s.Step()
	if !ok || !now.Equal(t0.Add(time.Second)) {
		t.Fatalf("Step = %v %v, want first timer", now, ok)
	}
	now, ok = s.Step()
	if !ok || !now.Equal(t0.Add(time.Minute)) {
		t.Fatalf("Step = %v %v, want second timer", now, ok)
	}
}

func TestSimulatedDeterministicFiringOrder(t *testing.T) {
	// Two timers due at the same instant fire in registration order, every
	// run — the property the harness's bit-identical timelines rest on.
	for run := 0; run < 20; run++ {
		s := NewSimulated(t0)
		var mu sync.Mutex
		var order []string
		var wg sync.WaitGroup
		for _, name := range []string{"a", "b", "c"} {
			ch := s.After(time.Minute)
			wg.Add(1)
			go func(name string, ch <-chan time.Time) {
				defer wg.Done()
				<-ch
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			}(name, ch)
		}
		// All three one-shot channels are buffered: firing order is the
		// channel-send order inside Advance, observable via Step-by-step
		// draining. Here we just check all fire and none are lost.
		s.Advance(time.Minute)
		wg.Wait()
		if len(order) != 3 {
			t.Fatalf("run %d: fired %d timers, want 3", run, len(order))
		}
	}
}

func TestSimulatedDrive(t *testing.T) {
	s := NewSimulated(t0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Drive(ctx, 1000) }()
	// At 1000×, simulated time should cross 1s within ~several ms of wall.
	deadline := time.Now().Add(5 * time.Second)
	for s.Now().Before(t0.Add(time.Second)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if s.Now().Before(t0.Add(time.Second)) {
		t.Fatalf("Drive advanced only to %v", s.Now())
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Or(nil)
	if c != Wall {
		t.Fatal("Or(nil) must be the wall clock")
	}
	if got := Or(c); got != c {
		t.Fatal("Or(c) must return c")
	}
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("wall clock went backwards")
	}
	if err := c.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	tk := c.NewTicker(time.Millisecond)
	<-tk.C()
	tk.Stop()
	if Since(c, before) <= 0 {
		t.Fatal("Since must be positive")
	}
}
