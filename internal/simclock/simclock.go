// Package simclock is Seagull's single clock abstraction. Every component
// that previously read the wall clock directly — sweeper tickers, WAL
// group-commit timers, admission cooldowns, varz uptime, client backoff —
// takes a Clock instead, so the whole system can run against a simulated
// clock at an arbitrary time-scale factor (cmd/seagull-simulate) or be
// stepped deterministically in tests.
//
// Two implementations ship: Real (thin wrappers over package time) and
// Simulated (a manually advanced clock with a timer heap and deterministic
// firing order). Or(nil) returns the wall clock, replacing the scattered
// per-package "nil means time.Now" defaulting this package subsumed.
package simclock

import (
	"context"
	"time"
)

// Clock is the time source injected into Seagull components. All methods are
// safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock or ctx is done,
	// returning ctx.Err() in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that receives the clock's time once d has
	// elapsed. The channel has capacity 1 and is never closed.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d. Like time.Ticker, slow
	// receivers see ticks coalesced, not queued; d must be positive.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the clock-agnostic counterpart of time.Ticker.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop releases the ticker; it does not close C.
	Stop()
}

// Wall is the process-wide real clock.
var Wall Clock = Real{}

// Or returns c, or the wall clock when c is nil. Components default their
// Clock config fields through it.
func Or(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

// Since returns the time elapsed on c since t.
func Since(c Clock, t time.Time) time.Duration { return c.Now().Sub(t) }

// Real implements Clock over the system wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep waits for d of wall time or until ctx is done.
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// After returns time.After(d).
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTicker wraps time.NewTicker.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }
