// Package simworkload is Seagull's scenario engine: seeded, deterministic
// fleet workloads with scheduled events — burst storms, maintenance windows,
// regional failover, drift injection — layered on internal/simulate's
// synthetic telemetry and driven against a full serving system on a
// simulated clock (internal/simclock) by the Run harness.
//
// A Scenario is a small declarative config (Go struct, JSON-encodable) that
// fully determines the workload: the same scenario and seed produce a
// bit-identical timeline, which the harness's determinism tests pin. Wall
// clock only enters through measured request latencies, which are reported
// separately in the SLO report and excluded from the timeline.
package simworkload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Event types.
const (
	// EventBurstStorm multiplies the affected servers' reported load and
	// the predict request rate by Magnitude while active — the overload
	// pattern the admission layer exists for.
	EventBurstStorm = "burst-storm"
	// EventMaintenance silences the affected servers' telemetry while
	// active (a patch window: hosts rebooting, agents down).
	EventMaintenance = "maintenance"
	// EventFailover silences the event's Region entirely and multiplies
	// every other region's load and predict traffic by Magnitude — traffic
	// shifted to the surviving regions.
	EventFailover = "failover"
	// EventDrift adds Magnitude (absolute load points, the equivalence
	// tests' perturbation) to the affected servers' reported load while
	// active, invalidating their stored predictions so the sweeper →
	// refresher loop has real work.
	EventDrift = "drift"
)

// Event is one scheduled disturbance of the steady-state workload.
type Event struct {
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Region filters the event to one region; empty means all regions
	// (required for failover, where it names the region that goes dark).
	Region string `json:"region,omitempty"`
	// AtHour is the event start, in simulated hours from the start of the
	// live replay.
	AtHour float64 `json:"at_hour"`
	// DurationHours is how long the event lasts; 0 means until the end of
	// the scenario (a persistent shift, the usual choice for drift).
	DurationHours float64 `json:"duration_hours,omitempty"`
	// Magnitude is the event's strength: load/traffic multiplier for
	// burst-storm and failover, absolute load delta for drift. Ignored for
	// maintenance.
	Magnitude float64 `json:"magnitude,omitempty"`
	// Fraction of each affected region's servers the event touches, in
	// (0, 1]; 0 means 1 (everyone). The affected set is the deterministic
	// leading fraction of the fleet's server list.
	Fraction float64 `json:"fraction,omitempty"`
}

// active reports whether the event covers the instant h hours into the
// replay.
func (e Event) active(h float64) bool {
	if h < e.AtHour {
		return false
	}
	return e.DurationHours <= 0 || h < e.AtHour+e.DurationHours
}

// RegionSpec sizes one region's fleet.
type RegionSpec struct {
	Name    string `json:"name"`
	Servers int    `json:"servers"`
}

// Scenario fully describes one simulation: fleet shape, warmup, replay
// length, maintenance cadences, request load and scheduled events.
type Scenario struct {
	Name string `json:"name"`
	// Seed drives every random draw (fleet generation per region uses
	// Seed + region index). Same scenario + seed → bit-identical timeline.
	Seed int64 `json:"seed"`
	// Regions are the simulated fleets; at least one.
	Regions []RegionSpec `json:"regions"`
	// HistoryWeeks is the batch-pipeline warmup: that many weeks of
	// telemetry are extracted to the lake and run through the weekly
	// pipeline before the live replay starts. Minimum 2. The live replay
	// then re-streams the final warmup week's telemetry (with event
	// perturbations) as live ingest — the equivalence tests' replay
	// semantics. A shadow, unperturbed copy of the stream runs alongside as
	// the counterfactual baseline for drift-lag measurement, so the model's
	// natural drift does not count as event detection.
	HistoryWeeks int `json:"history_weeks"`
	// Hours is the live-replay length in simulated hours.
	Hours float64 `json:"hours"`
	// SlotMinutes is the telemetry interval. Default 5.
	SlotMinutes int `json:"slot_minutes,omitempty"`
	// Model is the forecast model the pipeline trains and deploys. Default
	// persistent previous-day (the production choice).
	Model string `json:"model,omitempty"`
	// PredictsPerHour is the baseline predict request rate across the
	// fleet, shaped by a diurnal factor and multiplied by active
	// burst-storm/failover events. Default 120.
	PredictsPerHour int `json:"predicts_per_hour,omitempty"`
	// SweepEvery is the background drift-sweep cadence in simulated
	// minutes. Default 60.
	SweepEveryMinutes int `json:"sweep_every_minutes,omitempty"`
	// CommitEvery is the WAL group-commit cadence in simulated minutes
	// (the simulated δ). Default: one slot.
	CommitEveryMinutes int `json:"commit_every_minutes,omitempty"`
	// SnapshotEvery is the incremental-snapshot cadence in simulated
	// minutes. Default 360 (six hours); negative disables snapshots.
	SnapshotEveryMinutes int `json:"snapshot_every_minutes,omitempty"`
	// MaxInflight bounds the serving layer's admitted concurrency (the
	// adaptive limiter's ceiling). Default 64.
	MaxInflight int `json:"max_inflight,omitempty"`
	// Brownout lets saturated predicts degrade to the persistent fallback
	// instead of shedding.
	Brownout bool `json:"brownout,omitempty"`
	// Replicas shards the serving layer: that many replicas, each owning a
	// consistent-hash shard of server IDs (its own ingest rings, drift
	// detector, refresher, sweeper and namespaced WAL/snapshots), behind a
	// stateless router the harness client talks to. Default 1 — the
	// single-process system, with no router hop. Routing is deterministic
	// per seed, so sharded timelines are bit-identical across runs too.
	Replicas int `json:"replicas,omitempty"`
	// Events are the scheduled disturbances, in any order.
	Events []Event `json:"events,omitempty"`
}

func (sc Scenario) withDefaults() Scenario {
	if sc.SlotMinutes <= 0 {
		sc.SlotMinutes = 5
	}
	if sc.PredictsPerHour <= 0 {
		sc.PredictsPerHour = 120
	}
	if sc.SweepEveryMinutes <= 0 {
		sc.SweepEveryMinutes = 60
	}
	if sc.CommitEveryMinutes <= 0 {
		sc.CommitEveryMinutes = sc.SlotMinutes
	}
	if sc.SnapshotEveryMinutes == 0 {
		sc.SnapshotEveryMinutes = 360
	}
	if sc.MaxInflight == 0 {
		sc.MaxInflight = 64
	}
	if sc.Replicas <= 0 {
		sc.Replicas = 1
	}
	return sc
}

// Validate rejects scenarios the harness cannot run deterministically.
func (sc Scenario) Validate() error {
	if len(sc.Regions) == 0 {
		return fmt.Errorf("simworkload: scenario %q has no regions", sc.Name)
	}
	for _, r := range sc.Regions {
		if r.Name == "" || r.Servers <= 0 {
			return fmt.Errorf("simworkload: region %+v needs a name and a positive server count", r)
		}
	}
	if sc.HistoryWeeks < 2 {
		return fmt.Errorf("simworkload: history_weeks = %d, need ≥ 2 (one week to prefeed the live window, one to train)", sc.HistoryWeeks)
	}
	if sc.Hours <= 0 {
		return fmt.Errorf("simworkload: hours = %v, need > 0", sc.Hours)
	}
	for i, e := range sc.Events {
		switch e.Type {
		case EventBurstStorm, EventFailover:
			if e.Magnitude <= 0 {
				return fmt.Errorf("simworkload: event %d (%s) needs a positive magnitude", i, e.Type)
			}
		case EventDrift:
			if e.Magnitude == 0 {
				return fmt.Errorf("simworkload: event %d (drift) needs a non-zero magnitude", i)
			}
		case EventMaintenance:
		default:
			return fmt.Errorf("simworkload: event %d has unknown type %q", i, e.Type)
		}
		if e.Type == EventFailover && e.Region == "" {
			return fmt.Errorf("simworkload: event %d (failover) must name the failing region", i)
		}
		if e.AtHour < 0 || e.Fraction < 0 || e.Fraction > 1 {
			return fmt.Errorf("simworkload: event %d has at_hour %v / fraction %v out of range", i, e.AtHour, e.Fraction)
		}
	}
	return nil
}

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scenario{}, fmt.Errorf("simworkload: parse %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// slotDur returns the telemetry interval.
func (sc Scenario) slotDur() time.Duration {
	return time.Duration(sc.SlotMinutes) * time.Minute
}

// Builtin returns the named built-in scenario, or ok=false. Names:
//
//   - "smoke": one small region, six simulated hours with a burst storm and
//     a drift injection — the CI smoke scenario (seconds of wall clock).
//   - "burst-drift-36h": the acceptance scenario — 36 simulated hours over
//     96 servers with a 3× burst storm, a persistent drift injection and a
//     maintenance window.
//   - "failover-48h": two regions, 48 simulated hours; region "east" goes
//     dark at hour 12 and "west" absorbs 1.8× traffic for six hours.
//   - "sharded-12h": the scale-out scenario — 64 servers consistent-hash
//     sharded across 4 replicas behind the router, 12 simulated hours with a
//     burst storm and a drift injection crossing shard boundaries.
func Builtin(name string) (Scenario, bool) {
	switch name {
	case "smoke":
		return Scenario{
			Name: "smoke", Seed: 1,
			Regions:      []RegionSpec{{Name: "west", Servers: 24}},
			HistoryWeeks: 2, Hours: 6,
			PredictsPerHour:   240,
			SweepEveryMinutes: 30,
			Brownout:          true,
			Events: []Event{
				{Type: EventBurstStorm, AtHour: 1, DurationHours: 1.5, Magnitude: 3, Fraction: 0.5},
				{Type: EventDrift, AtHour: 2.5, Magnitude: 35, Fraction: 0.75},
			},
		}, true
	case "burst-drift-36h":
		return Scenario{
			Name: "burst-drift-36h", Seed: 7,
			Regions:      []RegionSpec{{Name: "west", Servers: 96}},
			HistoryWeeks: 2, Hours: 36,
			PredictsPerHour:   600,
			SweepEveryMinutes: 60,
			Brownout:          true,
			Events: []Event{
				{Type: EventBurstStorm, AtHour: 6, DurationHours: 4, Magnitude: 3, Fraction: 0.5},
				{Type: EventDrift, AtHour: 12, Magnitude: 35, Fraction: 0.25},
				{Type: EventMaintenance, AtHour: 20, DurationHours: 2, Fraction: 0.2},
			},
		}, true
	case "failover-48h":
		return Scenario{
			Name: "failover-48h", Seed: 11,
			Regions:      []RegionSpec{{Name: "east", Servers: 48}, {Name: "west", Servers: 48}},
			HistoryWeeks: 2, Hours: 48,
			PredictsPerHour:   480,
			SweepEveryMinutes: 60,
			Brownout:          true,
			Events: []Event{
				{Type: EventFailover, Region: "east", AtHour: 12, DurationHours: 6, Magnitude: 1.8},
			},
		}, true
	case "sharded-12h":
		return Scenario{
			Name: "sharded-12h", Seed: 17,
			Regions:      []RegionSpec{{Name: "west", Servers: 64}},
			HistoryWeeks: 2, Hours: 12,
			PredictsPerHour:   360,
			SweepEveryMinutes: 60,
			Brownout:          true,
			Replicas:          4,
			Events: []Event{
				{Type: EventBurstStorm, AtHour: 2, DurationHours: 2, Magnitude: 3, Fraction: 0.5},
				{Type: EventDrift, AtHour: 5, Magnitude: 35, Fraction: 0.5},
			},
		}, true
	}
	return Scenario{}, false
}

// BuiltinNames lists the built-in scenarios in display order.
func BuiltinNames() []string {
	return []string{"smoke", "burst-drift-36h", "failover-48h", "sharded-12h"}
}
