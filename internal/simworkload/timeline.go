package simworkload

import (
	"bytes"
	"fmt"
	"strconv"
)

// Row is one timeline sample: the simulated time plus cumulative counters of
// every deterministic subsystem. Wall-clock-dependent quantities (request
// latencies, shed counts, brownout degradations) are deliberately excluded —
// they live in the SLO report — so the same scenario and seed render a
// bit-identical CSV on every run, which the determinism tests pin.
type Row struct {
	SimHours float64 `json:"sim_hours"`

	// Ingest counters (stream.Stats).
	Appended   uint64 `json:"appended"`
	Duplicates uint64 `json:"duplicates"`
	TooOld     uint64 `json:"too_old"`
	TooNew     uint64 `json:"too_new"`

	// Drift loop counters.
	Sweeps     uint64 `json:"sweeps"`
	Drifted    uint64 `json:"drifted"`
	Queued     uint64 `json:"queued"`
	Refreshed  uint64 `json:"refreshed"`
	RefSkipped uint64 `json:"ref_skipped"`
	RefDropped uint64 `json:"ref_dropped"`
	// QueueDepth is the refresh queue depth observed right after the most
	// recent sweep, before its drain.
	QueueDepth int `json:"queue_depth"`

	// Durability counters.
	WALCommits uint64 `json:"wal_commits"`
	WALRecords uint64 `json:"wal_records"`
	Snapshots  uint64 `json:"snapshots"`

	// PredictsIssued counts predict requests dispatched (not their
	// outcomes, which are wall-dependent).
	PredictsIssued uint64 `json:"predicts_issued"`

	// Stream-side trace counters (simulated-clock tracer). Span counts are
	// deterministic — sweeps and refresh drains run synchronously at slot
	// boundaries — so they belong in the CSV; span durations are zero on the
	// frozen simulated clock and are deliberately not sampled.
	SweepSpans      uint64 `json:"sweep_spans"`
	RefreshTrains   uint64 `json:"refresh_trains"`
	RefreshMemoHits uint64 `json:"refresh_memo_hits"`
}

// timelineHeader lists the CSV columns, in Row field order.
const timelineHeader = "sim_hours,appended,duplicates,too_old,too_new," +
	"sweeps,drifted,queued,refreshed,ref_skipped,ref_dropped,queue_depth," +
	"wal_commits,wal_records,snapshots,predicts_issued," +
	"sweep_spans,refresh_trains,refresh_memo_hits"

// TimelineCSV renders rows as a CSV document. Float formatting uses the
// shortest round-trip representation, so the bytes are a pure function of the
// row values.
func TimelineCSV(rows []Row) []byte {
	var b bytes.Buffer
	b.WriteString(timelineHeader)
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strconv.FormatFloat(r.SimHours, 'g', -1, 64))
		for _, v := range []uint64{
			r.Appended, r.Duplicates, r.TooOld, r.TooNew,
			r.Sweeps, r.Drifted, r.Queued, r.Refreshed, r.RefSkipped, r.RefDropped,
		} {
			fmt.Fprintf(&b, ",%d", v)
		}
		fmt.Fprintf(&b, ",%d", r.QueueDepth)
		for _, v := range []uint64{
			r.WALCommits, r.WALRecords, r.Snapshots, r.PredictsIssued,
			r.SweepSpans, r.RefreshTrains, r.RefreshMemoHits,
		} {
			fmt.Fprintf(&b, ",%d", v)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}
