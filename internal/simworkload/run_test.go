package simworkload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// smokeScenario returns the built-in smoke scenario, shortened for tests.
func smokeScenario(t *testing.T) Scenario {
	t.Helper()
	sc, ok := Builtin("smoke")
	if !ok {
		t.Fatal("smoke scenario missing")
	}
	return sc
}

// TestRunSmokeDeterministic is the tentpole invariant: two runs of the same
// scenario and seed produce bit-identical timeline CSVs, even though the
// serving side does real concurrent HTTP over loopback.
func TestRunSmokeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	sc := smokeScenario(t)
	opts := Options{Hours: 4}

	out1, err := Run(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Run(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.CSV, out2.CSV) {
		t.Fatalf("timelines differ across runs of the same scenario+seed:\n--- run 1\n%s\n--- run 2\n%s", out1.CSV, out2.CSV)
	}

	// A different seed must actually change the workload.
	out3, err := Run(context.Background(), sc, Options{Hours: 4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(out1.CSV, out3.CSV) {
		t.Fatal("different seeds produced identical timelines")
	}

	// The run did real work on every layer.
	rep := out1.Report
	if rep.Ingest.Appended == 0 {
		t.Fatal("no live telemetry ingested")
	}
	if rep.Predicts.Issued == 0 || rep.Predicts.OK == 0 {
		t.Fatalf("predict traffic did not flow: %+v", rep.Predicts)
	}
	if rep.Sweeper.Ticks == 0 {
		t.Fatal("background sweeps never ran")
	}
	if rep.Durability.Commits == 0 || rep.Durability.CommitRecords == 0 {
		t.Fatalf("WAL never committed: %+v", rep.Durability)
	}
	if len(rep.DriftLag) != 1 {
		t.Fatalf("drift lag entries = %d, want 1", len(rep.DriftLag))
	}
	if lag := rep.DriftLag[0].LagHours; lag < 0 || lag > 1.5 {
		t.Fatalf("injected drift detected after %.2fh, want within 1.5h (sweep cadence 0.5h)", lag)
	}
	if rep.Sweeper.Drifted == 0 || rep.Refresh.Refreshed == 0 {
		t.Fatalf("drift loop idle: sweeper %+v refresh %+v", rep.Sweeper, rep.Refresh)
	}

	// Timeline rows are cumulative and end at the replay horizon.
	rows := out1.Rows
	if len(rows) < 4 {
		t.Fatalf("rows = %d, want one per simulated hour plus the origin", len(rows))
	}
	if rows[0].SimHours != 0 || rows[len(rows)-1].SimHours != 4 {
		t.Fatalf("row span [%v, %v], want [0, 4]", rows[0].SimHours, rows[len(rows)-1].SimHours)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Appended < rows[i-1].Appended || rows[i].PredictsIssued < rows[i-1].PredictsIssued {
			t.Fatalf("counters regressed between rows %d and %d", i-1, i)
		}
	}
}

// TestRunCancelStopsCleanly: cancelling mid-replay returns ctx.Err() promptly
// with the partial timeline, and the deferred teardown (serving listener,
// durability, pool binding) does not hang.
func TestRunCancelStopsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	sc := smokeScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the replay loop: the first hourly progress line
	// proves the live phase is underway.
	logf := func(format string, args ...any) {
		if strings.HasPrefix(format, "sim ") {
			cancel()
		}
	}
	out, err := Run(ctx, sc, Options{Hours: 6, Logf: logf})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if out == nil || len(out.Rows) == 0 {
		t.Fatal("cancelled run returned no partial timeline")
	}
	if last := out.Rows[len(out.Rows)-1].SimHours; last >= 6 {
		t.Fatalf("cancelled run completed the full horizon (%vh)", last)
	}
}

// TestScenarioValidate rejects the configs the harness cannot run.
func TestScenarioValidate(t *testing.T) {
	base := Scenario{
		Name:         "t",
		Regions:      []RegionSpec{{Name: "r", Servers: 4}},
		HistoryWeeks: 2,
		Hours:        1,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []func(*Scenario){
		func(s *Scenario) { s.Regions = nil },
		func(s *Scenario) { s.Regions = []RegionSpec{{Name: "", Servers: 4}} },
		func(s *Scenario) { s.HistoryWeeks = 1 },
		func(s *Scenario) { s.Hours = 0 },
		func(s *Scenario) { s.Events = []Event{{Type: "quake"}} },
		func(s *Scenario) { s.Events = []Event{{Type: EventBurstStorm}} },
		func(s *Scenario) { s.Events = []Event{{Type: EventDrift}} },
		func(s *Scenario) { s.Events = []Event{{Type: EventFailover, Magnitude: 2}} },
		func(s *Scenario) { s.Events = []Event{{Type: EventMaintenance, AtHour: -1}} },
		func(s *Scenario) { s.Events = []Event{{Type: EventMaintenance, Fraction: 1.5}} },
	}
	for i, mutate := range bad {
		sc := base
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d passed validation", i)
		}
	}
}

// TestLoadScenarioRoundTrip: a scenario serialized to JSON loads back equal,
// and the built-ins all validate.
func TestLoadScenarioRoundTrip(t *testing.T) {
	sc, _ := Builtin("burst-drift-36h")
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(sc)
	round, _ := json.Marshal(got)
	if !bytes.Equal(want, round) {
		t.Fatalf("round trip changed the scenario:\nwant %s\ngot  %s", want, round)
	}

	for _, name := range BuiltinNames() {
		sc, ok := Builtin(name)
		if !ok {
			t.Fatalf("BuiltinNames lists %q but Builtin does not know it", name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in %q invalid: %v", name, err)
		}
	}
	if _, ok := Builtin("no-such"); ok {
		t.Fatal("unknown builtin resolved")
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestEventShaping pins the event helpers' semantics: activation windows,
// affected-set sizing, and the diurnal shape's bounds.
func TestEventShaping(t *testing.T) {
	e := Event{Type: EventDrift, AtHour: 2, DurationHours: 3}
	for h, want := range map[float64]bool{0: false, 1.99: false, 2: true, 4.99: true, 5: false} {
		if got := e.active(h); got != want {
			t.Errorf("active(%v) = %v, want %v", h, got, want)
		}
	}
	persistent := Event{Type: EventDrift, AtHour: 2}
	if !persistent.active(1000) {
		t.Error("zero-duration event should persist to the end")
	}

	if got := affectedCount(Event{Fraction: 0.25}, 24); got != 6 {
		t.Errorf("affectedCount(0.25, 24) = %d, want 6", got)
	}
	if got := affectedCount(Event{Fraction: 0}, 10); got != 10 {
		t.Errorf("affectedCount(0, 10) = %d, want all", got)
	}
	if got := affectedCount(Event{Fraction: 0.01}, 10); got != 1 {
		t.Errorf("affectedCount(0.01, 10) = %d, want at least 1", got)
	}
	if !eventHits(Event{}, "anywhere") || eventHits(Event{Region: "east"}, "west") {
		t.Error("eventHits region filter wrong")
	}

	for h := 0; h < 24*7; h++ {
		f := trafficShape(time.Date(2020, 1, 5, h%24, 0, 0, 0, time.UTC).AddDate(0, 0, h/24))
		if f < 0.4 || f > 1.4 {
			t.Fatalf("trafficShape out of bounds at hour %d: %v", h, f)
		}
	}
}

// TestRunShardedDeterministic pins the scale-out topology: the sharded-12h
// scenario (4 consistent-hash replicas behind the router) replays
// deterministically — two runs produce bit-identical timeline CSVs — and the
// work is genuinely spread across the replica fleet.
func TestRunShardedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	sc, ok := Builtin("sharded-12h")
	if !ok {
		t.Fatal("sharded-12h scenario missing")
	}
	opts := Options{Hours: 4}

	out1, err := Run(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Run(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.CSV, out2.CSV) {
		t.Fatalf("sharded timelines differ across runs of the same scenario+seed:\n--- run 1\n%s\n--- run 2\n%s", out1.CSV, out2.CSV)
	}

	rep := out1.Report
	if rep.Replicas != 4 {
		t.Fatalf("report replicas = %d, want 4", rep.Replicas)
	}
	if rep.Ingest.Appended == 0 || rep.Ingest.Servers == 0 {
		t.Fatalf("no telemetry flowed through the fleet: %+v", rep.Ingest)
	}
	if rep.Predicts.Issued == 0 || rep.Predicts.OK == 0 {
		t.Fatalf("predict traffic did not flow through the router: %+v", rep.Predicts)
	}
	if rep.Predicts.Failed > 0 {
		t.Fatalf("routed predicts failed: %+v", rep.Predicts)
	}
	if rep.Durability.Commits == 0 {
		t.Fatalf("replica WALs never committed: %+v", rep.Durability)
	}
	// Nearly the whole fleet must hold live rings (short-lived servers may
	// retire before the replay window; everyone else streams every slot).
	if rep.Ingest.Servers < 48 {
		t.Fatalf("fleet ingest servers = %d, want ≥ 48 of 64", rep.Ingest.Servers)
	}

	// The same scenario collapsed to one replica must still be a valid run
	// (and a different timeline shape is fine — topology changes sweeps).
	sc.Replicas = 1
	if _, err := Run(context.Background(), sc, Options{Hours: 1}); err != nil {
		t.Fatalf("single-replica collapse of the sharded scenario failed: %v", err)
	}
}
