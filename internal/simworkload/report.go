package simworkload

import (
	"fmt"
	"sort"
	"strings"

	"seagull/internal/obs"
	"seagull/internal/stream"
)

// PredictSLO summarizes the serving side of a run. Latencies and shed counts
// are wall-clock measurements — real request round-trips over the loopback
// listener — so they vary run to run and are excluded from the timeline CSV.
type PredictSLO struct {
	Issued   uint64 `json:"issued"`
	OK       uint64 `json:"ok"`
	Degraded uint64 `json:"degraded"` // brownout responses (persistent fallback)
	Shed     uint64 `json:"shed"`     // admission-control rejections (overloaded)
	Failed   uint64 `json:"failed"`   // every other error (insufficient history, transport, ...)

	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// DriftLag is the detection outcome of one injected drift event: how long,
// in simulated time, the sweep loop took to flag an affected server that was
// clean before the event. LagHours is -1 when the run ended undetected
// (event too late, affected servers' backup windows outside the replay, or
// magnitude inside the accuracy bound).
type DriftLag struct {
	Region   string  `json:"region,omitempty"`
	AtHour   float64 `json:"at_hour"`
	LagHours float64 `json:"lag_hours"`
}

// SLOReport is the run's summary artifact: deterministic subsystem counters
// plus the wall-measured serving SLOs.
type SLOReport struct {
	Scenario    string  `json:"scenario"`
	Seed        int64   `json:"seed"`
	SimHours    float64 `json:"sim_hours"`
	WallSeconds float64 `json:"wall_seconds"`
	// Compression is simulated seconds per wall second achieved by the run.
	Compression float64 `json:"compression"`

	Predicts PredictSLO `json:"predicts"`
	DriftLag []DriftLag `json:"drift_lag,omitempty"`
	// MaxQueueDepth is the deepest post-sweep refresh queue observed.
	MaxQueueDepth int `json:"max_queue_depth"`
	// Replicas is the serving topology: 1 is the single-process system, more
	// means that many consistent-hash shards behind the router. The stream
	// stats below are fleet sums.
	Replicas int `json:"replicas,omitempty"`

	Ingest     stream.Stats           `json:"ingest"`
	Sweeper    stream.SweeperStats    `json:"sweeper"`
	Refresh    stream.RefreshStats    `json:"refresh"`
	Durability stream.DurabilityStats `json:"durability"`

	// Stages is the serving-side per-stage latency breakdown (admission
	// wait, pool checkout, train, inference) from the wall-clock tracer.
	// Wall measurements, like the predict percentiles: report-only, never in
	// the timeline CSV.
	Stages []obs.StageStat `json:"stages,omitempty"`
}

// String renders the report as the operator-facing summary the CLI prints.
func (r SLOReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d): %.1f simulated hours in %.1fs wall (%.0fx compression)\n",
		r.Scenario, r.Seed, r.SimHours, r.WallSeconds, r.Compression)
	p := r.Predicts
	fmt.Fprintf(&b, "predicts: %d issued, %d ok, %d degraded, %d shed, %d failed; latency p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms\n",
		p.Issued, p.OK, p.Degraded, p.Shed, p.Failed, p.P50ms, p.P95ms, p.P99ms, p.MaxMS)
	for _, st := range r.Stages {
		hits := ""
		if st.Hits > 0 {
			hits = fmt.Sprintf(" (%d warm)", st.Hits)
		}
		fmt.Fprintf(&b, "  stage %-10s %6d spans%s, avg %.3fms, max %.3fms\n",
			st.Stage+":", st.Count, hits, st.AvgMs, st.MaxMs)
	}
	fmt.Fprintf(&b, "ingest: %d appended, %d dup, %d too_old, %d too_new across %d servers\n",
		r.Ingest.Appended, r.Ingest.Duplicates, r.Ingest.TooOld, r.Ingest.TooNew, r.Ingest.Servers)
	fmt.Fprintf(&b, "drift loop: %d sweeps, %d drifted, %d queued, %d refreshed, %d skipped, %d dropped (max queue depth %d)\n",
		r.Sweeper.Ticks, r.Sweeper.Drifted, r.Refresh.Queued, r.Refresh.Refreshed, r.Refresh.Skipped, r.Refresh.Dropped, r.MaxQueueDepth)
	for _, d := range r.DriftLag {
		if d.LagHours < 0 {
			fmt.Fprintf(&b, "drift@%gh (%s): NOT detected within the run\n", d.AtHour, d.Region)
			continue
		}
		fmt.Fprintf(&b, "drift@%gh (%s): detected after %.2f simulated hours\n", d.AtHour, d.Region, d.LagHours)
	}
	fmt.Fprintf(&b, "durability: %d WAL commits (%d records, %d bytes), %d snapshots, %d commit errors\n",
		r.Durability.Commits, r.Durability.CommitRecords, r.Durability.CommitBytes,
		r.Durability.Snapshots, r.Durability.CommitErrors)
	return b.String()
}

// percentile returns the q-th percentile (0 < q ≤ 1) of ms, which must be
// sorted ascending. Zero-length input yields 0.
func percentile(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	idx := int(q*float64(len(ms))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ms) {
		idx = len(ms) - 1
	}
	return ms[idx]
}

// summarizeLatencies fills the latency fields of a PredictSLO from raw
// millisecond samples (consumed: the slice is sorted in place).
func summarizeLatencies(p *PredictSLO, ms []float64) {
	if len(ms) == 0 {
		return
	}
	sort.Float64s(ms)
	p.P50ms = percentile(ms, 0.50)
	p.P95ms = percentile(ms, 0.95)
	p.P99ms = percentile(ms, 0.99)
	p.MaxMS = ms[len(ms)-1]
}
