package simworkload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/lake"
	"seagull/internal/obs"
	"seagull/internal/parallel"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/router"
	"seagull/internal/serving"
	"seagull/internal/shard"
	"seagull/internal/simclock"
	"seagull/internal/simulate"
	"seagull/internal/stream"
)

const week = 7 * 24 * time.Hour

// Options parameterizes a harness run, orthogonally to the Scenario: the
// scenario says what happens in simulated time; the options say how the run
// executes on the host.
type Options struct {
	// Dir is the data directory for the lake (extracts, WAL, snapshots).
	// Empty means a temporary directory removed when the run ends.
	Dir string
	// Hours overrides the scenario's live-replay length when positive.
	Hours float64
	// Seed overrides the scenario seed when non-zero.
	Seed int64
	// Scale paces the driver loop at that many simulated seconds per wall
	// second (100 = a day every ~14 minutes); 0 runs unthrottled — as fast
	// as the host executes, the usual choice.
	Scale float64
	// Schedule selects the ingest fan-out's work-stealing discipline — the
	// guided-vs-chunked ablation hook.
	Schedule parallel.Schedule
	// IngestWorkers and PredictWorkers bound the per-slot fan-outs.
	// Defaults 4 and 8.
	IngestWorkers  int
	PredictWorkers int
	// RowEvery is the timeline sampling cadence in simulated time. Default
	// one hour.
	RowEvery time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.IngestWorkers <= 0 {
		o.IngestWorkers = 4
	}
	if o.PredictWorkers <= 0 {
		o.PredictWorkers = 8
	}
	if o.RowEvery <= 0 {
		o.RowEvery = time.Hour
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Outcome is everything a run produces.
type Outcome struct {
	Scenario Scenario
	Rows     []Row
	// CSV is the rendered timeline — bit-identical per (scenario, seed).
	CSV    []byte
	Report SLOReport
}

// regionRun is one region's replay state.
type regionRun struct {
	spec    RegionSpec
	fleet   *simulate.Fleet
	servers []*simulate.Server
	// targets are the long-lived servers predict traffic is drawn from
	// (short-lived servers may have no live history or stored prediction).
	targets []*simulate.Server
	carry   float64 // fractional predict-count accumulator
}

// harness owns one run's wired system.
type harness struct {
	sc    Scenario
	opts  Options
	clock *simclock.Simulated

	fleetStart  time.Time
	replayStart time.Time
	slot        time.Duration
	ppd         int
	genWeeks    int

	store *lake.Store
	db    *cosmos.DB
	reg   *registry.Registry
	pipe  *pipeline.Pipeline

	// stacks are the serving replicas: one for the single-process scenario,
	// N consistent-hash shards behind a router when Scenario.Replicas > 1.
	// The lake, document store and registry are shared (the cloud services);
	// each stack privately owns its shard's rings, detector, refresher,
	// sweeper and namespaced durability.
	stacks []*simStack
	smap   *shard.Map

	// simTracer records the stream side (sweeps, refreshes) on the simulated
	// clock: span counts are deterministic per (scenario, seed) and land in
	// the timeline CSV. wallTracer records the serving side on the wall
	// clock: per-stage latencies are real measurements and land in the SLO
	// report next to the predict percentiles.
	simTracer  *obs.Tracer
	wallTracer *obs.Tracer

	// shadow is the counterfactual baseline: the same telemetry stream
	// without event perturbations. Drift-lag measurement counts a server as
	// detected only when the live sweep flags it and the shadow sweep does
	// not, which separates injected drift from the model's natural drift.
	shadow *stream.Ingestor
	sdet   *stream.DriftDetector

	client  *serving.Client
	regions []*regionRun
	rng     *rand.Rand
	closers []func()

	ingPool  *parallel.Pool
	predPool *parallel.Pool

	issued     uint64 // deterministic dispatch count
	okN        atomic.Uint64
	degradedN  atomic.Uint64
	shedN      atomic.Uint64
	failedN    atomic.Uint64
	latMu      sync.Mutex
	latMS      []float64
	lastDepth  int
	maxDepth   int
	judgedWeek int
	drifts     []*driftTrack
}

// driftTrack measures one injected drift event's detection lag: the first
// sweep at or after the event where an affected server that was clean on the
// last pre-event sweep shows up drifted.
type driftTrack struct {
	ev         Event
	affected   map[string]bool
	detectedAt float64 // replay hours; -1 while undetected
}

type appendJob struct {
	id string
	t  time.Time
	// live is the fully event-perturbed value; base is the same value
	// without drift injections — the shadow baseline. ok is false when an
	// event silences the delivery (maintenance, failover) on both streams.
	live float64
	base float64
	ok   bool
}

type predictJob struct {
	region string
	id     string
}

// simStack is one serving replica's private state.
type simStack struct {
	name string
	ing  *stream.Ingestor
	det  *stream.DriftDetector
	ref  *stream.Refresher
	sw   *stream.Sweeper
	dur  *stream.Durability
}

// ownerStack resolves a server ID to the replica that owns its shard.
func (h *harness) ownerStack(serverID string) *simStack {
	if len(h.stacks) == 1 {
		return h.stacks[0]
	}
	return h.stacks[h.smap.OwnerIndex(serverID)]
}

// Run executes one scenario against a fully wired system — batch warmup
// through the weekly pipeline, then a slot-by-slot live replay on a
// simulated clock: telemetry ingest (perturbed by the scenario's events) fans
// out concurrently with real predict requests over a loopback HTTP listener,
// while drift sweeps, refresh drains, WAL group commits, snapshots and
// week-boundary pipeline runs fire at their simulated cadences.
//
// Everything the simulated clock paces is deterministic per (scenario,
// seed) and lands in the timeline; everything the wall clock measures
// (latencies, sheds, brownouts) lands in the SLO report. Cancelling ctx
// stops the run at the next slot boundary and returns ctx.Err() after
// tearing the system down.
func Run(ctx context.Context, sc Scenario, opts Options) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	opts = opts.withDefaults()
	if opts.Hours > 0 {
		sc.Hours = opts.Hours
	}
	if opts.Seed != 0 {
		sc.Seed = opts.Seed
	}

	dir := opts.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "seagull-sim-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	h := &harness{sc: sc, opts: opts, slot: sc.slotDur()}
	h.ppd = int(24 * time.Hour / h.slot)
	liveWeeks := int(math.Ceil(sc.Hours / (7 * 24)))
	if liveWeeks < 1 {
		liveWeeks = 1
	}
	h.genWeeks = sc.HistoryWeeks - 1 + liveWeeks

	if err := h.build(dir, liveWeeks); err != nil {
		return nil, err
	}
	defer h.close()

	wallStart := time.Now()
	if err := h.warmup(ctx); err != nil {
		return nil, err
	}
	if err := h.prefeed(); err != nil {
		return nil, err
	}
	opts.Logf("warmup done: %d weeks trained across %d regions, live window prefed (%.2fs wall)",
		sc.HistoryWeeks, len(sc.Regions), time.Since(wallStart).Seconds())

	srvClose, err := h.serve()
	if err != nil {
		return nil, err
	}
	defer srvClose()

	rows, err := h.replay(ctx, wallStart)
	out := &Outcome{Scenario: sc, Rows: rows, CSV: TimelineCSV(rows)}
	out.Report = h.report(time.Since(wallStart))
	if err != nil {
		return out, err
	}
	return out, nil
}

// build wires the substrates on the simulated clock (everything except the
// serving layer, whose latencies are real work measured on the wall clock).
func (h *harness) build(dir string, liveWeeks int) error {
	store, err := lake.Open(filepath.Join(dir, "lake"))
	if err != nil {
		return err
	}
	db, err := cosmos.Open("")
	if err != nil {
		return err
	}
	h.store, h.db = store, db

	for i, spec := range h.sc.Regions {
		fleet := simulate.GenerateFleet(simulate.Config{
			Region:   spec.Name,
			Servers:  spec.Servers,
			Weeks:    h.genWeeks,
			Interval: h.slot,
			Seed:     h.sc.Seed + int64(i),
		})
		r := &regionRun{spec: spec, fleet: fleet, servers: fleet.Servers}
		for _, srv := range fleet.Servers {
			if !srv.ShortLived {
				r.targets = append(r.targets, srv)
			}
		}
		h.regions = append(h.regions, r)
	}
	h.fleetStart = h.regions[0].fleet.Config.Start
	h.replayStart = h.fleetStart.Add(time.Duration(h.sc.HistoryWeeks-1) * week)
	h.clock = simclock.NewSimulated(h.replayStart)
	h.judgedWeek = h.sc.HistoryWeeks - 1

	h.reg = registry.New(h.clock)
	h.pipe = pipeline.New(store, db, h.reg, nil)
	h.pipe.Clock = h.clock

	ppw := int(week / h.slot)
	ringCfg := stream.Config{
		Interval: h.slot,
		Epoch:    h.fleetStart,
		Slots:    (liveWeeks + 2) * ppw,
		Clock:    h.clock,
	}
	h.shadow = stream.NewIngestor(ringCfg)
	h.sdet = stream.NewDriftDetector(h.shadow, db, stream.DriftConfig{})
	pool := serving.NewModelPool(serving.PoolConfig{})
	unbind := pool.Bind(h.reg)
	h.simTracer = obs.NewTracer(obs.TracerConfig{Clock: h.clock})
	h.wallTracer = obs.NewTracer(obs.TracerConfig{})

	names := make([]string, h.sc.Replicas)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%02d", i)
	}
	smap, err := shard.New(uint64(h.sc.Seed), names)
	if err != nil {
		return err
	}
	h.smap = smap
	for _, name := range smap.Replicas() {
		st := &simStack{name: name}
		st.ing = stream.NewIngestor(ringCfg)
		st.det = stream.NewDriftDetector(st.ing, db, stream.DriftConfig{})
		st.ref = stream.NewRefresher(st.ing, db, h.reg, serving.StreamPool(pool), stream.RefreshConfig{
			Workers: 2,
			Clock:   h.clock,
			Tracer:  h.simTracer,
		})
		st.sw = stream.NewSweeper(db, st.det, st.ref, stream.SweeperConfig{
			Interval: time.Duration(h.sc.SweepEveryMinutes) * time.Minute,
			Clock:    h.clock,
			Tracer:   h.simTracer,
		})
		durCfg := stream.DurabilityConfig{
			CommitEvery:   time.Duration(h.sc.CommitEveryMinutes) * time.Minute,
			SnapshotEvery: time.Duration(h.sc.SnapshotEveryMinutes) * time.Minute,
			Clock:         h.clock,
		}
		if h.sc.Replicas > 1 {
			// Namespaced so N replicas share the lake without colliding; the
			// single-replica run keeps the original object names.
			durCfg.Namespace = name
		}
		st.dur = stream.NewDurability(st.ing, store, durCfg)
		h.stacks = append(h.stacks, st)
	}
	h.closers = append(h.closers, unbind)

	h.rng = rand.New(rand.NewSource(h.sc.Seed*911_383 + 101))
	h.ingPool = parallel.NewPool(h.opts.IngestWorkers).WithSchedule(h.opts.Schedule)
	h.predPool = parallel.NewPool(h.opts.PredictWorkers)

	for _, ev := range h.sc.Events {
		if ev.Type != EventDrift {
			continue
		}
		t := &driftTrack{ev: ev, affected: map[string]bool{}, detectedAt: -1}
		for _, r := range h.regions {
			if !eventHits(ev, r.spec.Name) {
				continue
			}
			n := affectedCount(ev, len(r.servers))
			for _, srv := range r.servers[:n] {
				t.affected[srv.ID] = true
			}
		}
		h.drifts = append(h.drifts, t)
	}
	return nil
}

// warmup extracts every generated week to the lake and runs the weekly
// pipeline for the history weeks, leaving each region with stored
// predictions and summaries for week HistoryWeeks-1 — the week the live
// replay re-enters.
func (h *harness) warmup(ctx context.Context) error {
	for _, r := range h.regions {
		if _, err := extract.ExtractAll(h.store, r.fleet); err != nil {
			return err
		}
		for w := 0; w < h.sc.HistoryWeeks; w++ {
			if _, err := h.pipe.RunWeek(ctx, pipeline.Config{
				Region:    r.spec.Name,
				Week:      w,
				ModelName: h.sc.Model,
				Interval:  h.slot,
			}); err != nil {
				return fmt.Errorf("simworkload: warmup %s week %d: %w", r.spec.Name, w, err)
			}
		}
	}
	// Arm durability only now: warmup telemetry flows through the lake, not
	// the live ring. The WAL covers everything the ring holds — the prefeed
	// week and the live replay — so crash recovery restores the full live
	// window. Each replica recovers only its own namespace.
	for _, st := range h.stacks {
		if _, err := st.dur.Recover(); err != nil {
			return err
		}
		if err := st.dur.Open(); err != nil {
			return err
		}
	}
	return nil
}

// prefeed streams the week before the replay into the live ring, so live
// predicts and refreshes start with a full training window instead of
// cold-starting.
func (h *harness) prefeed() error {
	for _, r := range h.regions {
		loads, err := extract.Ingest(h.store, r.spec.Name, h.sc.HistoryWeeks-2, h.slot)
		if err != nil {
			return err
		}
		for _, sl := range loads {
			st := h.ownerStack(sl.ServerID)
			if _, err := st.ing.AppendSeries(sl.ServerID, sl.Load.Start, sl.Load.Values); err != nil {
				return err
			}
			if _, err := h.shadow.AppendSeries(sl.ServerID, sl.Load.Start, sl.Load.Values); err != nil {
				return err
			}
		}
	}
	return nil
}

// serve starts one serving replica per stack on loopback listeners and
// points the harness client at the fleet: directly at the single service
// when Replicas == 1 (no router hop, the original topology), otherwise at a
// router fronting the shard replicas. The returned function tears it all
// down.
func (h *harness) serve() (func(), error) {
	var closers []func()
	teardown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	var reps []router.Replica
	for _, st := range h.stacks {
		svc := serving.NewService(h.reg, h.db, serving.ServiceConfig{
			Ingestor:    st.ing,
			Drift:       st.det,
			Refresher:   st.ref,
			Sweeper:     st.sw,
			Durability:  st.dur,
			MaxInflight: h.sc.MaxInflight,
			Brownout:    h.sc.Brownout,
			Tracer:      h.wallTracer,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			teardown()
			return nil, err
		}
		hsrv := &http.Server{Handler: svc.Handler()}
		go func() { _ = hsrv.Serve(ln) }()
		closers = append(closers, func() {
			_ = hsrv.Close()
			svc.Close()
		})
		reps = append(reps, router.Replica{Name: st.name, BaseURL: "http://" + ln.Addr().String()})
	}
	if len(reps) == 1 {
		h.client = serving.NewClient(reps[0].BaseURL)
		return teardown, nil
	}
	// The router itself runs on the wall clock: its retry/breaker pacing is
	// serving-side machinery, and nothing deterministic depends on it.
	rt, err := router.New(router.Config{Seed: uint64(h.sc.Seed), Replicas: reps})
	if err != nil {
		teardown()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		teardown()
		return nil, err
	}
	hsrv := &http.Server{Handler: rt.Handler()}
	go func() { _ = hsrv.Serve(ln) }()
	closers = append(closers, func() { _ = hsrv.Close() })
	h.client = serving.NewClient("http://" + ln.Addr().String())
	return teardown, nil
}

func (h *harness) close() {
	for _, st := range h.stacks {
		if st.dur != nil {
			_ = st.dur.Close()
		}
	}
	for i := len(h.closers) - 1; i >= 0; i-- {
		h.closers[i]()
	}
}

// replay drives the live span slot by slot: advance the simulated clock,
// fan out the slot's telemetry and predict traffic concurrently, then fire
// whatever simulated cadences the slot boundary crossed.
func (h *harness) replay(ctx context.Context, wallStart time.Time) ([]Row, error) {
	totalSlots := int(math.Ceil(sc2h(h.sc.Hours) / float64(h.slot)))
	slotMin := h.sc.SlotMinutes
	weekMin := int(week / time.Minute)
	rowEveryMin := int(h.opts.RowEvery / time.Minute)
	if rowEveryMin < slotMin {
		rowEveryMin = slotMin
	}

	rows := []Row{h.sample(0)}
	for s := 0; s < totalSlots; s++ {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		slotStart := h.replayStart.Add(time.Duration(s) * h.slot)
		slotEnd := slotStart.Add(h.slot)
		h.clock.AdvanceTo(slotEnd)
		hour := float64(s) * h.slot.Hours()
		endHour := hour + h.slot.Hours()

		appends := h.slotAppends(slotStart, hour)
		predicts := h.slotPredicts(slotStart, hour)
		h.issued += uint64(len(predicts))

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = h.predPool.ForEach(len(predicts), func(i int) error {
				h.doPredict(ctx, predicts[i])
				return nil
			})
		}()
		_ = h.ingPool.ForEach(len(appends), func(i int) error {
			a := appends[i]
			if a.ok {
				h.ownerStack(a.id).ing.Append(a.id, a.t, a.live)
				h.shadow.Append(a.id, a.t, a.base)
			}
			return nil
		})
		wg.Wait()

		// Maintenance fires per replica, in shard-map order — the iteration
		// order is part of the deterministic timeline.
		elapsedMin := (s + 1) * slotMin
		if elapsedMin%h.sc.CommitEveryMinutes == 0 {
			for _, st := range h.stacks {
				_ = st.dur.CommitNow()
			}
		}
		if h.sc.SnapshotEveryMinutes > 0 && elapsedMin%h.sc.SnapshotEveryMinutes == 0 {
			for _, st := range h.stacks {
				_, _ = st.dur.SnapshotNow()
			}
		}
		if elapsedMin%h.sc.SweepEveryMinutes == 0 {
			depth := 0
			for _, st := range h.stacks {
				_ = st.sw.SweepOnce(ctx)
				depth += st.ref.Stats().Pending
			}
			h.lastDepth = depth
			if depth > h.maxDepth {
				h.maxDepth = depth
			}
			h.measureDrift(ctx, endHour)
			for _, st := range h.stacks {
				if err := st.ref.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
					return rows, err
				}
			}
		}
		if elapsedMin%weekMin == 0 {
			completed := h.sc.HistoryWeeks - 2 + elapsedMin/weekMin
			if completed >= h.sc.HistoryWeeks && completed < h.genWeeks {
				for _, r := range h.regions {
					if _, err := h.pipe.RunWeek(ctx, pipeline.Config{
						Region:    r.spec.Name,
						Week:      completed,
						ModelName: h.sc.Model,
						Interval:  h.slot,
					}); err != nil {
						return rows, fmt.Errorf("simworkload: week %d boundary run: %w", completed, err)
					}
				}
				h.judgedWeek = completed
				h.opts.Logf("sim %.0fh: week %d pipeline run complete", endHour, completed)
			}
		}
		if elapsedMin%rowEveryMin == 0 {
			rows = append(rows, h.sample(endHour))
			h.opts.Logf("sim %.0fh / %.0fh (%.1fs wall)", endHour, h.sc.Hours, time.Since(wallStart).Seconds())
		}

		if h.opts.Scale > 0 {
			wallTarget := time.Duration(float64(time.Duration(s+1)*h.slot) / h.opts.Scale)
			if lead := wallTarget - time.Since(wallStart); lead > 0 {
				time.Sleep(lead)
			}
		}
	}
	last := float64(totalSlots) * h.slot.Hours()
	if n := len(rows); n == 0 || rows[n-1].SimHours != last {
		rows = append(rows, h.sample(last))
	}
	return rows, nil
}

// slotAppends builds the slot's telemetry deliveries: each server's
// generated load value at slotStart, transformed by the active events. Each
// delivery carries a second value with every perturbation except drift
// injections — the shadow stream — so drift-lag measurement can difference
// out everything the scenario does besides the injection under test.
func (h *harness) slotAppends(slotStart time.Time, hour float64) []appendJob {
	var jobs []appendJob
	for _, r := range h.regions {
		silentAll := false
		loadMult := 1.0
		for _, ev := range h.sc.Events {
			if !ev.active(hour) {
				continue
			}
			if ev.Type == EventFailover {
				if ev.Region == r.spec.Name {
					silentAll = true
				} else {
					loadMult *= ev.Magnitude
				}
			}
		}
		for pos, srv := range r.servers {
			idx, ok := srv.Load().IndexOf(slotStart)
			if !ok {
				continue
			}
			v := srv.Load().Values[idx]
			if v != v { // missing (NaN) telemetry point
				continue
			}
			skip := silentAll
			val := v * loadMult
			base := val
			for _, ev := range h.sc.Events {
				if !ev.active(hour) || !eventHits(ev, r.spec.Name) {
					continue
				}
				if pos >= affectedCount(ev, len(r.servers)) {
					continue
				}
				switch ev.Type {
				case EventMaintenance:
					skip = true
				case EventBurstStorm:
					val *= ev.Magnitude
					base *= ev.Magnitude
				case EventDrift:
					val += ev.Magnitude
				}
			}
			jobs = append(jobs, appendJob{
				id: srv.ID, t: slotStart,
				live: clampLoad(val), base: clampLoad(base), ok: !skip,
			})
		}
	}
	return jobs
}

// slotPredicts draws the slot's predict traffic: the scenario's base rate
// shaped by time of day and weekday, scaled per region by active events, and
// spread over deterministic seeded target picks.
func (h *harness) slotPredicts(slotStart time.Time, hour float64) []predictJob {
	total := 0
	for _, r := range h.regions {
		total += len(r.targets)
	}
	if total == 0 {
		return nil
	}
	shape := trafficShape(slotStart)
	var jobs []predictJob
	for _, r := range h.regions {
		mult := 1.0
		for _, ev := range h.sc.Events {
			if !ev.active(hour) {
				continue
			}
			switch ev.Type {
			case EventBurstStorm:
				if eventHits(ev, r.spec.Name) {
					mult *= ev.Magnitude
				}
			case EventFailover:
				if ev.Region == r.spec.Name {
					mult = 0
				} else {
					mult *= ev.Magnitude
				}
			}
		}
		share := float64(len(r.targets)) / float64(total)
		r.carry += float64(h.sc.PredictsPerHour) * share * shape * mult * h.slot.Hours()
		n := int(r.carry)
		r.carry -= float64(n)
		for i := 0; i < n; i++ {
			srv := r.targets[h.rng.Intn(len(r.targets))]
			jobs = append(jobs, predictJob{region: r.spec.Name, id: srv.ID})
		}
	}
	return jobs
}

// doPredict issues one live-history predict over the loopback listener and
// records its wall latency and outcome.
func (h *harness) doPredict(ctx context.Context, job predictJob) {
	start := time.Now()
	resp, err := h.client.PredictV2(ctx, serving.PredictRequestV2{
		Scenario:    pipeline.Scenario,
		Region:      job.region,
		ServerID:    job.id,
		LiveHistory: true,
		Horizon:     h.ppd,
	})
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	h.latMu.Lock()
	h.latMS = append(h.latMS, ms)
	h.latMu.Unlock()
	switch {
	case err == nil && resp.Degraded:
		h.degradedN.Add(1)
	case err == nil:
		h.okN.Add(1)
	case isOverloaded(err):
		h.shedN.Add(1)
	default:
		h.failedN.Add(1)
	}
}

// measureDrift advances the drift-lag trackers. From each drift event's
// start onward, it sweeps the live detector and the shadow (unperturbed)
// detector over the event's regions; detection is the first sweep where an
// affected server is drifted live but clean in the counterfactual — natural
// model drift flags both streams and cancels out. Measurement sweeps share
// the production detector but bypass the refresher, so they never perturb
// the production loop's queue.
func (h *harness) measureDrift(ctx context.Context, hour float64) {
	for _, t := range h.drifts {
		if t.detectedAt >= 0 || hour < t.ev.AtHour {
			continue
		}
		live := map[string]bool{}
		base := map[string]bool{}
		for _, r := range h.regions {
			if !eventHits(t.ev, r.spec.Name) {
				continue
			}
			// Each replica's detector sees only its shard's rings; the union
			// over replicas is the fleet's live verdict.
			for _, st := range h.stacks {
				lrep, err := st.det.Sweep(ctx, r.spec.Name, h.judgedWeek)
				if err != nil {
					continue
				}
				for _, sd := range lrep.DriftedServers {
					live[sd.ServerID] = true
				}
			}
			srep, err := h.sdet.Sweep(ctx, r.spec.Name, h.judgedWeek)
			if err != nil {
				continue
			}
			for _, sd := range srep.DriftedServers {
				base[sd.ServerID] = true
			}
		}
		for id := range live {
			if t.affected[id] && !base[id] {
				t.detectedAt = hour - t.ev.AtHour
				break
			}
		}
	}
}

// fleetIngest sums the replica ingestors' counters. Per-replica counters are
// deterministic (routing is a pure function of the seed), so the sums are
// too.
func (h *harness) fleetIngest() stream.Stats {
	var out stream.Stats
	for _, st := range h.stacks {
		s := st.ing.Stats()
		out.Servers += s.Servers
		out.Appended += s.Appended
		out.Duplicates += s.Duplicates
		out.TooOld += s.TooOld
		out.TooNew += s.TooNew
		out.BadValues += s.BadValues
	}
	return out
}

func (h *harness) fleetSweeper() stream.SweeperStats {
	var out stream.SweeperStats
	for _, st := range h.stacks {
		s := st.sw.Stats()
		out.Ticks += s.Ticks
		out.Regions += s.Regions
		out.Drifted += s.Drifted
		out.Queued += s.Queued
		out.Dropped += s.Dropped
		out.Paused += s.Paused
		out.Errors += s.Errors
	}
	return out
}

func (h *harness) fleetRefresh() stream.RefreshStats {
	var out stream.RefreshStats
	for _, st := range h.stacks {
		s := st.ref.Stats()
		out.Queued += s.Queued
		out.Coalesced += s.Coalesced
		out.Dropped += s.Dropped
		out.Refreshed += s.Refreshed
		out.Skipped += s.Skipped
		out.Failed += s.Failed
		out.Pending += s.Pending
	}
	return out
}

func (h *harness) fleetDurability() stream.DurabilityStats {
	out := h.stacks[0].dur.Stats()
	for _, st := range h.stacks[1:] {
		s := st.dur.Stats()
		out.Commits += s.Commits
		out.CommitRecords += s.CommitRecords
		out.CommitBytes += s.CommitBytes
		out.CommitErrors += s.CommitErrors
		out.Dropped += s.Dropped
		out.Snapshots += s.Snapshots
		out.SnapshotErrs += s.SnapshotErrs
		out.Truncations += s.Truncations
	}
	if len(h.stacks) > 1 {
		out.Recovered = nil // per-replica recovery doesn't sum meaningfully
	}
	return out
}

// sample snapshots the deterministic counters into a timeline row.
func (h *harness) sample(simHours float64) Row {
	ist := h.fleetIngest()
	sst := h.fleetSweeper()
	rst := h.fleetRefresh()
	dst := h.fleetDurability()
	sweepSpans, _ := stageCount(h.simTracer, "sweep")
	trainSpans, trainHits := stageCount(h.simTracer, "train")
	return Row{
		SimHours:        simHours,
		Appended:        ist.Appended,
		Duplicates:      ist.Duplicates,
		TooOld:          ist.TooOld,
		TooNew:          ist.TooNew,
		Sweeps:          sst.Ticks,
		Drifted:         sst.Drifted,
		Queued:          sst.Queued,
		Refreshed:       rst.Refreshed,
		RefSkipped:      rst.Skipped,
		RefDropped:      rst.Dropped,
		QueueDepth:      h.lastDepth,
		WALCommits:      dst.Commits,
		WALRecords:      dst.CommitRecords,
		Snapshots:       dst.Snapshots,
		PredictsIssued:  h.issued,
		SweepSpans:      sweepSpans,
		RefreshTrains:   trainSpans,
		RefreshMemoHits: trainHits,
	}
}

// stageCount reads one stage's cumulative span count and hit count from a
// tracer's aggregates. On the simulated-clock tracer these are deterministic:
// sweeps and refresh drains run synchronously at slot boundaries.
func stageCount(tr *obs.Tracer, stage string) (count, hits uint64) {
	for _, st := range tr.StageStats() {
		if st.Stage == stage {
			return st.Count, st.Hits
		}
	}
	return 0, 0
}

// report assembles the SLO report after the replay.
func (h *harness) report(wall time.Duration) SLOReport {
	rep := SLOReport{
		Scenario:      h.sc.Name,
		Seed:          h.sc.Seed,
		SimHours:      h.sc.Hours,
		WallSeconds:   wall.Seconds(),
		MaxQueueDepth: h.maxDepth,
		Replicas:      len(h.stacks),
		Ingest:        h.fleetIngest(),
		Sweeper:       h.fleetSweeper(),
		Refresh:       h.fleetRefresh(),
		Durability:    h.fleetDurability(),
	}
	if rep.WallSeconds > 0 {
		rep.Compression = rep.SimHours * 3600 / rep.WallSeconds
	}
	rep.Predicts = PredictSLO{
		Issued:   h.issued,
		OK:       h.okN.Load(),
		Degraded: h.degradedN.Load(),
		Shed:     h.shedN.Load(),
		Failed:   h.failedN.Load(),
	}
	// Per-stage wall latencies from the serving-side tracer: where inside a
	// predict the time went (admission wait, pool checkout, train,
	// inference). Wall measurements, so report-only — never in the CSV.
	rep.Stages = h.wallTracer.StageStats()
	h.latMu.Lock()
	summarizeLatencies(&rep.Predicts, h.latMS)
	h.latMu.Unlock()
	for _, t := range h.drifts {
		rep.DriftLag = append(rep.DriftLag, DriftLag{
			Region: t.ev.Region, AtHour: t.ev.AtHour, LagHours: t.detectedAt,
		})
	}
	return rep
}

// clampLoad bounds a perturbed value to the telemetry's 0–100 load scale.
func clampLoad(v float64) float64 {
	if v > 100 {
		return 100
	}
	if v < 0 {
		return 0
	}
	return v
}

// eventHits reports whether the event's region filter covers region.
func eventHits(e Event, region string) bool {
	return e.Region == "" || e.Region == region
}

// affectedCount returns how many of a region's n servers the event touches:
// the deterministic leading ceil(Fraction·n).
func affectedCount(e Event, n int) int {
	f := e.Fraction
	if f <= 0 || f > 1 {
		f = 1
	}
	c := int(math.Ceil(f * float64(n)))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// trafficShape is the diurnal/weekly predict-rate factor: a sinusoid peaking
// mid-afternoon (trough ~0.65 at 03:00) with quieter weekends.
func trafficShape(t time.Time) float64 {
	hod := float64(t.Hour()) + float64(t.Minute())/60
	f := 1 + 0.35*math.Sin(2*math.Pi*(hod-9)/24)
	if wd := t.Weekday(); wd == time.Saturday || wd == time.Sunday {
		f *= 0.75
	}
	return f
}

// isOverloaded reports whether err is an admission-control shed.
func isOverloaded(err error) bool {
	var api *serving.APIError
	if errors.As(err, &api) {
		return api.Status == http.StatusServiceUnavailable || api.Status == http.StatusTooManyRequests
	}
	return false
}

// sc2h converts scenario hours to a duration's float64 nanoseconds — kept as
// a helper so slot math stays in one place.
func sc2h(hours float64) float64 { return hours * float64(time.Hour) }
