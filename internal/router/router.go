// Package router is the stateless front of the region-sharded fleet: N
// serving replicas, each owning a consistent-hash shard of server IDs (its
// shard's ingest rings, WAL, snapshots, sweeper and warm pools), fronted by
// this thin process that routes by server ID and aggregates observability
// fleet-wide.
//
// The router holds no durable state — ownership is a pure function of the
// shard map's (seed, membership), so any number of router processes
// configured identically route identically, and a router restart loses
// nothing. Per-replica requests ride the serving client's retry loop
// (jittered exponential backoff honoring Retry-After) and per-path circuit
// breaker, so a draining replica is retried until its replacement is up and
// a dead one fails fast instead of absorbing every request's timeout.
//
// Routing semantics per endpoint:
//
//   - POST /v2/predict: routed to the owner of server_id (mandatory for
//     live_history — the live window lives in the owner's rings); requests
//     without a server_id are stateless and round-robin across replicas.
//   - POST /v2/predict/batch: split by item owner, fanned out concurrently,
//     per-item results merged back in request order. A replica failure
//     fails only its own items.
//   - POST /v2/ingest: servers and points split by owner; the optional
//     sweep clause broadcasts to every replica (each sweeps its own ring);
//     tallies are summed.
//   - GET /varz, /metrics: aggregated fleet-wide (per-replica documents
//     plus summed fleet totals / router counters).
//   - GET /v2/predictions/{region}/{week}: fanned out and merged by server
//     (replicas share the document store in-region, but a refresher upserts
//     only its own shard, so the union is the fleet view).
//   - POST /v2/advise, /v1/*, GET /v2/models: stateless; round-robin with
//     failover to the next replica.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/serving"
	"seagull/internal/shard"
	"seagull/internal/simclock"
)

// Replica names one serving replica and its base URL.
type Replica struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
}

// Config parameterizes a Router. The zero value of the optional fields
// selects production defaults.
type Config struct {
	// Seed fixes the shard map. Every router (and every tool that needs to
	// compute ownership offline) must share it.
	Seed uint64
	// Replicas is the initial membership. At least one is required.
	Replicas []Replica
	// Retry bounds the per-replica retry loop; the zero value enables 4
	// attempts with a 2s budget — sized for the drain window of a rolling
	// restart.
	Retry serving.RetryConfig
	// Breaker parameterizes the per-replica, per-path circuit breaker; the
	// zero value opens after 5 consecutive retryable failures with a 1s
	// cooldown. Threshold < 0 disables it.
	Breaker serving.BreakerConfig
	// HTTP is the upstream transport; nil builds one with a 60s timeout.
	HTTP *http.Client
	// MaxBodyBytes bounds inbound request bodies. Default 64 MiB.
	MaxBodyBytes int64
	// Clock paces retries, breaker cooldowns and uptime; nil means the wall
	// clock.
	Clock simclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 4
		if c.Retry.MaxElapsed == 0 {
			c.Retry.MaxElapsed = 2 * time.Second
		}
	}
	if c.Breaker.Threshold == 0 {
		c.Breaker.Threshold = 5
	} else if c.Breaker.Threshold < 0 {
		c.Breaker.Threshold = 0
	}
	if c.Breaker.Cooldown <= 0 {
		c.Breaker.Cooldown = time.Second
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{Timeout: 60 * time.Second}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	c.Clock = simclock.Or(c.Clock)
	return c
}

// routeVars is one route's live counters.
type routeVars struct {
	count  atomic.Uint64
	errors atomic.Uint64
}

// replicaVars is one replica's forwarding counters. They survive membership
// changes, so a drain/rejoin keeps its history.
type replicaVars struct {
	forwards atomic.Uint64
	failures atomic.Uint64
}

// Router fronts the replica fleet. Construct with New; it is an
// http.Handler.
type Router struct {
	cfg     Config
	clock   simclock.Clock
	started time.Time
	mux     *http.ServeMux

	// mu guards the membership view: the shard map and the client set swap
	// together, atomically from a request's point of view.
	mu      sync.RWMutex
	smap    *shard.Map
	clients map[string]*serving.Client

	rr atomic.Uint64 // round-robin cursor for stateless forwards

	routesMu sync.Mutex
	routes   map[string]*routeVars
	repMu    sync.Mutex
	replicas map[string]*replicaVars
}

// New builds a router over the configured replicas.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		clock:    cfg.Clock,
		routes:   map[string]*routeVars{},
		replicas: map[string]*replicaVars{},
	}
	rt.started = rt.clock.Now()
	names := make([]string, 0, len(cfg.Replicas))
	clients := make(map[string]*serving.Client, len(cfg.Replicas))
	for _, rep := range cfg.Replicas {
		if rep.BaseURL == "" {
			return nil, fmt.Errorf("router: replica %q has no base URL", rep.Name)
		}
		if _, dup := clients[rep.Name]; dup {
			return nil, fmt.Errorf("router: duplicate replica %q", rep.Name)
		}
		names = append(names, rep.Name)
		clients[rep.Name] = rt.newClient(rep.BaseURL)
	}
	smap, err := shard.New(cfg.Seed, names)
	if err != nil {
		return nil, err
	}
	rt.smap, rt.clients = smap, clients

	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, rt.instrument(pattern, h))
	}
	handle("GET /healthz", rt.handleHealth)
	handle("GET /readyz", rt.handleReady)
	handle("GET /varz", rt.handleVarz)
	handle("GET /metrics", rt.handleMetrics)
	handle("POST /v2/predict", rt.handlePredict)
	handle("POST /v2/predict/batch", rt.handleBatch)
	handle("POST /v2/ingest", rt.handleIngest)
	handle("POST /v2/advise", rt.forwardJSON("/v2/advise"))
	handle("GET /v2/models", rt.forwardGet("/v2/models"))
	handle("GET /v2/predictions/{region}/{week}", rt.handlePredictions)
	handle("POST /v1/predict", rt.forwardJSON("/v1/predict"))
	handle("GET /v1/models", rt.forwardGet("/v1/models"))
	rt.mux = mux
	return rt, nil
}

// newClient builds the retry/breaker-armed client for one replica URL.
func (rt *Router) newClient(baseURL string) *serving.Client {
	return &serving.Client{
		BaseURL: baseURL,
		HTTP:    rt.cfg.HTTP,
		Retry:   rt.cfg.Retry,
		Breaker: rt.cfg.Breaker,
		Clock:   rt.cfg.Clock,
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Handler returns the router as an http.Handler (itself).
func (rt *Router) Handler() http.Handler { return rt }

// Map returns the current shard map.
func (rt *Router) Map() *shard.Map {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.smap
}

// Members returns the current replica names, sorted.
func (rt *Router) Members() []string { return rt.Map().Replicas() }

// Join adds a replica to the membership. Only the keys the newcomer wins
// move to it (≈ 1/(N+1) of the fleet); every other assignment is untouched.
func (rt *Router) Join(rep Replica) error {
	if rep.BaseURL == "" {
		return fmt.Errorf("router: replica %q has no base URL", rep.Name)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	smap, err := rt.smap.WithJoined(rep.Name)
	if err != nil {
		return err
	}
	clients := make(map[string]*serving.Client, len(rt.clients)+1)
	for n, c := range rt.clients {
		clients[n] = c
	}
	clients[rep.Name] = rt.newClient(rep.BaseURL)
	rt.smap, rt.clients = smap, clients
	return nil
}

// Leave removes a replica from the membership; only the keys it owned move.
// A fresh client is built if the replica later rejoins, so a stale open
// breaker never outlives the member that tripped it.
func (rt *Router) Leave(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	smap, err := rt.smap.WithLeft(name)
	if err != nil {
		return err
	}
	clients := make(map[string]*serving.Client, len(rt.clients)-1)
	for n, c := range rt.clients {
		if n != name {
			clients[n] = c
		}
	}
	rt.smap, rt.clients = smap, clients
	return nil
}

// view snapshots the membership for one request.
func (rt *Router) view() (*shard.Map, map[string]*serving.Client) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.smap, rt.clients
}

// ownerClient resolves a server ID to its owning replica's client.
func (rt *Router) ownerClient(serverID string) (string, *serving.Client) {
	smap, clients := rt.view()
	name := smap.Owner(serverID)
	return name, clients[name]
}

// nextClient picks a replica for a stateless forward, round-robin.
func (rt *Router) nextClient(skip map[string]bool) (string, *serving.Client) {
	smap, clients := rt.view()
	names := smap.Replicas()
	n := len(names)
	start := int(rt.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		name := names[(start+i)%n]
		if skip[name] {
			continue
		}
		return name, clients[name]
	}
	return "", nil
}

// replicaVarsFor returns (creating once) the forwarding counters of one
// replica.
func (rt *Router) replicaVarsFor(name string) *replicaVars {
	rt.repMu.Lock()
	defer rt.repMu.Unlock()
	rv, ok := rt.replicas[name]
	if !ok {
		rv = &replicaVars{}
		rt.replicas[name] = rv
	}
	return rv
}

// observeForward records one upstream call's outcome.
func (rt *Router) observeForward(name string, err error) {
	rv := rt.replicaVarsFor(name)
	rv.forwards.Add(1)
	if err != nil {
		rv.failures.Add(1)
	}
}

// statusWriter captures the response status for the route error counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with per-route request/error accounting.
func (rt *Router) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	rt.routesMu.Lock()
	rv, ok := rt.routes[name]
	if !ok {
		rv = &routeVars{}
		rt.routes[name] = rv
	}
	rt.routesMu.Unlock()
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		rv.count.Add(1)
		if sw.status >= 400 {
			rv.errors.Add(1)
		}
	}
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// ReadyStatus is the /readyz document: the router is ready only when every
// shard has a ready owner — partial coverage means routed requests would
// fail for a deterministic slice of the fleet.
type ReadyStatus struct {
	Ready    bool            `json:"ready"`
	Replicas map[string]bool `json:"replicas"`
}

// Ready probes every replica's /readyz and reports fleet coverage.
func (rt *Router) Ready(ctx context.Context) ReadyStatus {
	smap, clients := rt.view()
	names := smap.Replicas()
	st := ReadyStatus{Ready: true, Replicas: make(map[string]bool, len(names))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, name := range names {
		wg.Add(1)
		go func(name string, c *serving.Client) {
			defer wg.Done()
			ok := c.Ready(ctx)
			mu.Lock()
			st.Replicas[name] = ok
			if !ok {
				st.Ready = false
			}
			mu.Unlock()
		}(name, clients[name])
	}
	wg.Wait()
	return st
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	st := rt.Ready(r.Context())
	status := http.StatusOK
	if !st.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, st)
}

// decode reads a bounded JSON body.
func (rt *Router) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, serving.CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, serving.CodeBadRequest, "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// writeUpstream translates an upstream call failure into a response. A
// structured replica error passes through verbatim (status, code, message);
// a transport failure or an open breaker becomes a retryable 503 naming the
// replica, so a client (or an upstream router) treats the partial outage
// exactly like a drain window.
func writeUpstream(w http.ResponseWriter, replica string, err error) {
	var api *serving.APIError
	if errors.As(err, &api) {
		if api.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(api.RetryAfter.Seconds()+0.5)))
		}
		writeError(w, api.Status, api.Code, api.Message)
		return
	}
	w.Header().Set("Retry-After", "1")
	if errors.Is(err, serving.ErrCircuitOpen) {
		writeError(w, http.StatusServiceUnavailable, serving.CodeOverloaded,
			fmt.Sprintf("replica %s: %v", replica, err))
		return
	}
	writeError(w, http.StatusServiceUnavailable, serving.CodeOverloaded,
		fmt.Sprintf("replica %s unavailable: %v", replica, err))
}

// upstreamErrorBody is writeUpstream's per-item form for batch merges.
func upstreamErrorBody(replica string, err error) *serving.ErrorBody {
	var api *serving.APIError
	if errors.As(err, &api) {
		return &serving.ErrorBody{Code: api.Code, Message: api.Message}
	}
	return &serving.ErrorBody{
		Code:    serving.CodeOverloaded,
		Message: fmt.Sprintf("replica %s unavailable: %v", replica, err),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code serving.ErrorCode, msg string) {
	writeJSON(w, status, struct {
		Error serving.ErrorBody `json:"error"`
	}{Error: serving.ErrorBody{Code: code, Message: msg}})
}
