package router_test

// The cross-replica equivalence suite — the contract the sharded fleet is
// pinned by. A 4-replica system (each replica owning a consistent-hash shard
// of servers: its own ingest rings, drift detector and namespaced WAL +
// snapshots in the shared lake) fed the same telemetry through the router
// must serve forecasts bit-identical to the single-process system, and a
// replica drain/rejoin must lose zero acknowledged points.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/lake"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/router"
	"seagull/internal/serving"
	"seagull/internal/simulate"
	"seagull/internal/stream"
)

const (
	testSlot   = 5 * time.Minute
	testWeeks  = 3 // weeks 0-1 pipelined, week 2 streamed live
	testRegion = "westus"
	testModel  = "pf-prev-day"
)

// world is the shared substrate every replica mounts: one lake, one document
// store, one registry — the cloud services of the paper's deployment.
type world struct {
	t     *testing.T
	store *lake.Store
	db    *cosmos.DB
	reg   *registry.Registry
	fleet *simulate.Fleet
	live  []*extract.ServerLoad // week 2, the live telemetry
}

func newWorld(t *testing.T, servers int) *world {
	t.Helper()
	store, err := lake.Open(filepath.Join(t.TempDir(), "lake"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, store: store, db: db, reg: registry.New(nil)}
	w.fleet = simulate.GenerateFleet(simulate.Config{
		Region: testRegion, Servers: servers, Weeks: testWeeks, Interval: testSlot, Seed: 11,
	})
	if _, err := extract.ExtractAll(store, w.fleet); err != nil {
		t.Fatal(err)
	}
	pipe := pipeline.New(store, db, w.reg, nil)
	for wk := 0; wk < testWeeks-1; wk++ {
		if _, err := pipe.RunWeek(context.Background(), pipeline.Config{
			Region: testRegion, Week: wk, ModelName: testModel, Interval: testSlot,
		}); err != nil {
			t.Fatalf("warmup week %d: %v", wk, err)
		}
	}
	w.live, err = extract.Ingest(store, testRegion, testWeeks-1, testSlot)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// replicaStack is one serving replica: its shard's ingest rings, drift
// detector, namespaced durability, and HTTP listener.
type replicaStack struct {
	name string
	ing  *stream.Ingestor
	dur  *stream.Durability
	svc  *serving.Service
	srv  *httptest.Server
}

// newStack mounts one replica (or, with durable=false and name "", the
// single-process baseline) on the world. The returned stack is recovered and
// persisting when durable.
func (w *world) newStack(name string, durable bool) *replicaStack {
	w.t.Helper()
	st := &replicaStack{name: name}
	st.ing = stream.NewIngestor(stream.Config{
		Interval: testSlot,
		Epoch:    w.fleet.Config.Start,
		Slots:    (testWeeks + 1) * int(7*24*time.Hour/testSlot),
	})
	cfg := serving.ServiceConfig{
		Ingestor:    st.ing,
		Drift:       stream.NewDriftDetector(st.ing, w.db, stream.DriftConfig{}),
		MaxInflight: -1, // determinism over admission dynamics in this suite
	}
	if durable {
		st.dur = stream.NewDurability(st.ing, w.store, stream.DurabilityConfig{
			Namespace:     name,
			SnapshotEvery: -1, // explicit CommitNow/SnapshotNow only
		})
		if _, err := st.dur.Recover(); err != nil {
			w.t.Fatal(err)
		}
		if err := st.dur.Open(); err != nil {
			w.t.Fatal(err)
		}
		cfg.Durability = st.dur
	}
	st.svc = serving.NewService(w.reg, w.db, cfg)
	st.srv = httptest.NewServer(st.svc.Handler())
	w.t.Cleanup(st.close)
	return st
}

func (st *replicaStack) close() {
	if st.srv != nil {
		st.srv.Close()
		st.srv = nil
	}
	if st.dur != nil {
		_ = st.dur.Close()
		st.dur = nil
	}
	if st.svc != nil {
		st.svc.Close()
		st.svc = nil
	}
}

// newFleet mounts n durable replicas and a router over them.
func (w *world) newFleet(n int) ([]*replicaStack, *router.Router) {
	w.t.Helper()
	reps := make([]*replicaStack, n)
	cfg := router.Config{Seed: 42}
	for i := range reps {
		name := string(rune('a' + i))
		reps[i] = w.newStack("shard-"+name, true)
		cfg.Replicas = append(cfg.Replicas, router.Replica{
			Name: reps[i].name, BaseURL: reps[i].srv.URL,
		})
	}
	rt, err := router.New(cfg)
	if err != nil {
		w.t.Fatal(err)
	}
	return reps, rt
}

// ingestBatch converts a slice of server loads into one ingest request.
func ingestBatch(loads []*extract.ServerLoad) serving.IngestRequest {
	var req serving.IngestRequest
	for _, sl := range loads {
		req.Servers = append(req.Servers, serving.IngestSeries{
			ServerID:    sl.ServerID,
			Start:       sl.Load.Start,
			IntervalMin: int(testSlot / time.Minute),
			Values:      sl.Load.Values,
		})
	}
	return req
}

// predictTargets returns the long-lived servers (short-lived ones may lack a
// full live-history day).
func (w *world) predictTargets() []string {
	var ids []string
	for _, srv := range w.fleet.Servers {
		if !srv.ShortLived {
			ids = append(ids, srv.ID)
		}
	}
	return ids
}

func livePredict(id string) serving.PredictRequestV2 {
	return serving.PredictRequestV2{
		Scenario:     pipeline.Scenario,
		Region:       testRegion,
		ServerID:     id,
		LiveHistory:  true,
		Horizon:      int(24 * time.Hour / testSlot),
		WindowPoints: 12,
	}
}

// TestFourReplicaEquivalence is the headline proof: same telemetry in,
// bit-identical forecasts out, single-process vs 4 replicas behind the
// router.
func TestFourReplicaEquivalence(t *testing.T) {
	w := newWorld(t, 48)
	ctx := context.Background()

	base := w.newStack("", false)
	baseClient := serving.NewClient(base.srv.URL)
	reps, rt := w.newFleet(4)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	routed := serving.NewClient(front.URL)

	req := ingestBatch(w.live)
	baseResp, err := baseClient.Ingest(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	routedResp, err := routed.Ingest(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if routedResp != baseResp {
		t.Fatalf("ingest tallies diverge: routed %+v vs single-process %+v", routedResp, baseResp)
	}

	// The fleet's rings must partition the baseline's, exactly along the
	// shard map.
	smap := rt.Map()
	total := 0
	for _, rep := range reps {
		ids := rep.ing.Servers()
		total += len(ids)
		if len(ids) == 0 {
			t.Errorf("replica %s owns no servers — balance broken at fleet scale", rep.name)
		}
		for _, id := range ids {
			if owner := smap.Owner(id); owner != rep.name {
				t.Errorf("server %s landed on %s but the map owns it to %s", id, rep.name, owner)
			}
		}
	}
	if want := len(base.ing.Servers()); total != want {
		t.Fatalf("replicas hold %d servers, single process holds %d", total, want)
	}

	// Bit-identical live-history forecasts for every long-lived server.
	for _, id := range w.predictTargets() {
		got, err := routed.PredictV2(ctx, livePredict(id))
		if err != nil {
			t.Fatalf("routed predict %s: %v", id, err)
		}
		want, err := baseClient.PredictV2(ctx, livePredict(id))
		if err != nil {
			t.Fatalf("direct predict %s: %v", id, err)
		}
		if got.Model != want.Model || got.Version != want.Version {
			t.Fatalf("%s: model %s/v%d vs %s/v%d", id, got.Model, got.Version, want.Model, want.Version)
		}
		if got.LLStart != want.LLStart || got.LLAvg != want.LLAvg {
			t.Fatalf("%s: lowest-load window (%d, %g) vs (%d, %g)",
				id, got.LLStart, got.LLAvg, want.LLStart, want.LLAvg)
		}
		if len(got.Forecast.Values) != len(want.Forecast.Values) {
			t.Fatalf("%s: forecast length %d vs %d", id, len(got.Forecast.Values), len(want.Forecast.Values))
		}
		for i := range got.Forecast.Values {
			if got.Forecast.Values[i] != want.Forecast.Values[i] {
				t.Fatalf("%s: forecast[%d] = %v vs %v — not bit-identical",
					id, i, got.Forecast.Values[i], want.Forecast.Values[i])
			}
		}
	}

	// Batch through the router must equal per-item direct predicts too: the
	// split/merge preserves request order across shards.
	items := make([]serving.BatchItem, 0, 8)
	for _, id := range w.predictTargets()[:8] {
		sl := findLoad(t, w.live, id)
		items = append(items, serving.BatchItem{
			ServerID: id,
			History:  serving.FromSeries(sl.Load),
			Horizon:  int(24 * time.Hour / testSlot),
		})
	}
	batch := serving.BatchRequest{Scenario: pipeline.Scenario, Region: testRegion, Servers: items}
	gotB, err := routed.PredictBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := baseClient.PredictBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if gotB.Succeeded != wantB.Succeeded || gotB.Failed != wantB.Failed {
		t.Fatalf("batch tallies: %d/%d vs %d/%d", gotB.Succeeded, gotB.Failed, wantB.Succeeded, wantB.Failed)
	}
	for i := range wantB.Results {
		if gotB.Results[i].ServerID != wantB.Results[i].ServerID {
			t.Fatalf("batch result %d out of request order: %s vs %s",
				i, gotB.Results[i].ServerID, wantB.Results[i].ServerID)
		}
		gv, wv := gotB.Results[i].Forecast, wantB.Results[i].Forecast
		if gv == nil || wv == nil {
			t.Fatalf("batch result %d missing forecast", i)
		}
		for j := range wv.Values {
			if gv.Values[j] != wv.Values[j] {
				t.Fatalf("batch %s forecast[%d] diverges", wantB.Results[i].ServerID, j)
			}
		}
	}

	// Fleet varz aggregates to the single-process totals.
	fv := rt.FleetVarz(ctx)
	if fv.ReadyReplicas != 4 || len(fv.Members) != 4 {
		t.Fatalf("fleet not fully ready: %+v", fv)
	}
	if fv.Fleet.Appended != uint64(baseResp.Accepted) {
		t.Errorf("fleet appended %d, single process accepted %d", fv.Fleet.Appended, baseResp.Accepted)
	}
	if fv.Fleet.Servers != len(base.ing.Servers()) {
		t.Errorf("fleet servers %d, single process %d", fv.Fleet.Servers, len(base.ing.Servers()))
	}
}

func findLoad(t *testing.T, loads []*extract.ServerLoad, id string) *extract.ServerLoad {
	t.Helper()
	for _, sl := range loads {
		if sl.ServerID == id {
			return sl
		}
	}
	t.Fatalf("no live telemetry for %s", id)
	return nil
}

// TestDrainRejoinZeroLoss kills one replica after its points were
// acknowledged (accepted + WAL-committed), rebuilds it from the shared
// lake, and requires every acknowledged point back — and re-sent telemetry
// to register as duplicates, never double-upserts.
func TestDrainRejoinZeroLoss(t *testing.T) {
	w := newWorld(t, 32)
	ctx := context.Background()
	reps, rt := w.newFleet(4)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	routed := serving.NewClient(front.URL)

	resp, err := routed.Ingest(ctx, ingestBatch(w.live))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted == 0 {
		t.Fatal("no points accepted")
	}
	// Group-commit every replica: everything accepted is now acknowledged.
	for _, rep := range reps {
		if err := rep.dur.CommitNow(); err != nil {
			t.Fatal(err)
		}
	}

	victim := reps[1]
	owned := victim.ing.Servers()
	if len(owned) == 0 {
		t.Fatal("victim owns no servers")
	}
	// Capture the acknowledged state: every owned server's live window.
	before := map[string][]float64{}
	for _, id := range owned {
		snap, ok := victim.ing.SnapshotInto(id, nil)
		if !ok {
			t.Fatalf("no window for %s", id)
		}
		before[id] = append([]float64(nil), snap.Values...)
	}

	// Hard-kill the victim: listener gone, no clean Close — the WAL is the
	// only thing standing between the fleet and data loss.
	victim.srv.Close()
	victim.svc.Close()

	// Rebuild the replica from the shared lake under the same namespace.
	reborn := w.newStack(victim.name, true)
	for id, want := range before {
		snap, ok := reborn.ing.SnapshotInto(id, nil)
		if !ok {
			t.Fatalf("server %s lost across drain/rejoin", id)
		}
		if len(snap.Values) != len(want) {
			t.Fatalf("server %s window %d points, had %d acknowledged", id, len(snap.Values), len(want))
		}
		for i := range want {
			if snap.Values[i] != want[i] && !(snap.Values[i] != snap.Values[i] && want[i] != want[i]) {
				t.Fatalf("server %s point %d: %v recovered vs %v acknowledged", id, i, snap.Values[i], want[i])
			}
		}
	}

	// Rejoin under the same name: the map is unchanged (same membership,
	// same seed), so no other replica's assignment moved.
	oldOwners := map[string]string{}
	for _, id := range w.predictTargets() {
		oldOwners[id] = rt.Map().Owner(id)
	}
	if err := rt.Leave(victim.name); err != nil {
		t.Fatal(err)
	}
	if err := rt.Join(router.Replica{Name: reborn.name, BaseURL: reborn.srv.URL}); err != nil {
		t.Fatal(err)
	}
	for id, owner := range oldOwners {
		if got := rt.Map().Owner(id); got != owner {
			t.Fatalf("rejoin moved %s: %s -> %s", id, owner, got)
		}
	}

	// An at-least-once client re-sends the whole batch: every point the
	// fleet already held must count as a duplicate — no double upserts.
	resend, err := routed.Ingest(ctx, ingestBatch(w.live))
	if err != nil {
		t.Fatal(err)
	}
	if resend.Accepted != 0 {
		t.Fatalf("re-send accepted %d points — the fleet had lost them", resend.Accepted)
	}
	if resend.Duplicates != resp.Accepted {
		t.Fatalf("re-send deduplicated %d of %d", resend.Duplicates, resp.Accepted)
	}

	// Full coverage restored: live predicts work for victim-owned servers.
	st := rt.Ready(ctx)
	if !st.Ready {
		t.Fatalf("fleet not ready after rejoin: %+v", st)
	}
	for _, id := range owned {
		if _, err := routed.PredictV2(ctx, livePredict(id)); err != nil {
			t.Fatalf("predict %s after rejoin: %v", id, err)
		}
	}
}
