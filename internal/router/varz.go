package router

import (
	"context"
	"net/http"
	"sort"
	"sync"

	"seagull/internal/obs"
	"seagull/internal/serving"
	"seagull/internal/simclock"
)

// Fleet-wide observability: /varz aggregates every replica's counters
// document next to the router's own routing counters, and /metrics renders
// the same aggregate in Prometheus exposition format. One scrape of the
// router is one view of the whole fleet.

// RouteVarz is one router route's counters.
type RouteVarz struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
}

// ReplicaVarz is one replica's slice of the fleet document.
type ReplicaVarz struct {
	Ready bool `json:"ready"`
	// Forwards/Failures count the router's upstream calls to this replica
	// (retries inside the client are one forward).
	Forwards uint64 `json:"forwards"`
	Failures uint64 `json:"failures"`
	// Error carries the varz fetch failure when the replica was unreachable
	// (Varz is then nil).
	Error string        `json:"error,omitempty"`
	Varz  *serving.Varz `json:"varz,omitempty"`
}

// FleetTotals sums the load-bearing counters across every reachable
// replica — the numbers a capacity dashboard wants first.
type FleetTotals struct {
	Servers       int    `json:"servers"`
	Appended      uint64 `json:"appended"`
	Duplicates    uint64 `json:"duplicates"`
	Requests      uint64 `json:"http_requests"`
	RequestErrors uint64 `json:"http_request_errors"`
	PoolHits      uint64 `json:"pool_hits"`
	PoolMisses    uint64 `json:"pool_misses"`
	Drifted       uint64 `json:"drifted"`
	Refreshed     uint64 `json:"refreshed"`
	WALCommits    uint64 `json:"wal_commits"`
	WALRecords    uint64 `json:"wal_records"`
	Snapshots     uint64 `json:"snapshots"`
}

// FleetVarz is the router's /varz document.
type FleetVarz struct {
	UptimeSec float64  `json:"uptime_sec"`
	Seed      uint64   `json:"seed"`
	Members   []string `json:"members"`
	// ReadyReplicas counts members currently passing /readyz; the fleet has
	// full shard coverage only when it equals len(Members).
	ReadyReplicas int                    `json:"ready_replicas"`
	Routes        map[string]RouteVarz   `json:"routes"`
	Fleet         FleetTotals            `json:"fleet"`
	Replicas      map[string]ReplicaVarz `json:"replicas"`
}

// FleetVarz assembles the aggregated fleet document, probing every replica
// concurrently.
func (rt *Router) FleetVarz(ctx context.Context) FleetVarz {
	smap, clients := rt.view()
	names := smap.Replicas()
	out := FleetVarz{
		UptimeSec: simclock.Since(rt.clock, rt.started).Seconds(),
		Seed:      smap.Seed(),
		Members:   names,
		Routes:    map[string]RouteVarz{},
		Replicas:  make(map[string]ReplicaVarz, len(names)),
	}
	rt.routesMu.Lock()
	for name, rv := range rt.routes {
		out.Routes[name] = RouteVarz{Count: rv.count.Load(), Errors: rv.errors.Load()}
	}
	rt.routesMu.Unlock()

	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string, c *serving.Client) {
			defer wg.Done()
			rep := ReplicaVarz{Ready: c.Ready(ctx)}
			v, err := c.Varz(ctx)
			if err != nil {
				rep.Error = err.Error()
			} else {
				rep.Varz = &v
			}
			rv := rt.replicaVarsFor(name)
			rep.Forwards, rep.Failures = rv.forwards.Load(), rv.failures.Load()
			mu.Lock()
			defer mu.Unlock()
			out.Replicas[name] = rep
			if rep.Ready {
				out.ReadyReplicas++
			}
			if rep.Varz == nil {
				return
			}
			t := &out.Fleet
			t.PoolHits += rep.Varz.Pool.Hits
			t.PoolMisses += rep.Varz.Pool.Misses
			for _, ep := range rep.Varz.Endpoints {
				t.Requests += ep.Count
				t.RequestErrors += ep.Errors
			}
			if st := rep.Varz.Ingest; st != nil {
				t.Servers += st.Servers
				t.Appended += st.Appended
				t.Duplicates += st.Duplicates
			}
			if st := rep.Varz.Drift; st != nil {
				t.Drifted += st.Drifted
			}
			if st := rep.Varz.Refresh; st != nil {
				t.Refreshed += st.Refreshed
			}
			if st := rep.Varz.Durability; st != nil {
				t.WALCommits += st.Commits
				t.WALRecords += st.CommitRecords
				t.Snapshots += st.Snapshots
			}
		}(name, clients[name])
	}
	wg.Wait()
	return out
}

func (rt *Router) handleVarz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.FleetVarz(r.Context()))
}

// WriteMetrics renders the fleet aggregate in Prometheus exposition format.
func (rt *Router) WriteMetrics(ctx context.Context, w http.ResponseWriter) error {
	v := rt.FleetVarz(ctx)
	e := obs.NewExpo(w)

	e.Gauge("seagull_router_uptime_seconds", "Seconds since the router started.", v.UptimeSec)
	e.Gauge("seagull_router_replicas", "Configured replica count.", float64(len(v.Members)))
	e.Gauge("seagull_router_ready_replicas", "Replicas currently passing readiness.", float64(v.ReadyReplicas))

	routes := make([]string, 0, len(v.Routes))
	for name := range v.Routes {
		routes = append(routes, name)
	}
	sort.Strings(routes)
	e.Header("seagull_router_requests_total", "counter", "Requests handled by the router, by route.")
	for _, name := range routes {
		e.Sample("seagull_router_requests_total", obs.Labels("route", name), float64(v.Routes[name].Count))
	}
	e.Header("seagull_router_request_errors_total", "counter", "Router requests answered with status >= 400, by route.")
	for _, name := range routes {
		e.Sample("seagull_router_request_errors_total", obs.Labels("route", name), float64(v.Routes[name].Errors))
	}

	e.Header("seagull_router_replica_up", "gauge", "1 when the replica passes readiness, by replica.")
	for _, name := range v.Members {
		up := 0.0
		if v.Replicas[name].Ready {
			up = 1
		}
		e.Sample("seagull_router_replica_up", obs.Labels("replica", name), up)
	}
	e.Header("seagull_router_replica_forwards_total", "counter", "Upstream calls forwarded, by replica.")
	for _, name := range v.Members {
		e.Sample("seagull_router_replica_forwards_total", obs.Labels("replica", name), float64(v.Replicas[name].Forwards))
	}
	e.Header("seagull_router_replica_failures_total", "counter", "Upstream calls that failed, by replica.")
	for _, name := range v.Members {
		e.Sample("seagull_router_replica_failures_total", obs.Labels("replica", name), float64(v.Replicas[name].Failures))
	}

	e.Gauge("seagull_fleet_servers", "Servers with live telemetry windows, fleet-wide.", float64(v.Fleet.Servers))
	e.Counter("seagull_fleet_ingest_appended_total", "Telemetry points appended, fleet-wide.", float64(v.Fleet.Appended))
	e.Counter("seagull_fleet_ingest_duplicates_total", "Duplicate telemetry points dropped, fleet-wide.", float64(v.Fleet.Duplicates))
	e.Counter("seagull_fleet_http_requests_total", "Requests handled by the replicas, fleet-wide.", float64(v.Fleet.Requests))
	e.Counter("seagull_fleet_http_request_errors_total", "Replica requests answered with status >= 400, fleet-wide.", float64(v.Fleet.RequestErrors))
	e.Counter("seagull_fleet_pool_hits_total", "Warm-pool hits, fleet-wide.", float64(v.Fleet.PoolHits))
	e.Counter("seagull_fleet_pool_misses_total", "Warm-pool misses, fleet-wide.", float64(v.Fleet.PoolMisses))
	e.Counter("seagull_fleet_drift_drifted_total", "Stored predictions found drifted, fleet-wide.", float64(v.Fleet.Drifted))
	e.Counter("seagull_fleet_refresh_refreshed_total", "Predictions retrained and republished, fleet-wide.", float64(v.Fleet.Refreshed))
	e.Counter("seagull_fleet_wal_commits_total", "WAL commit cycles, fleet-wide.", float64(v.Fleet.WALCommits))
	e.Counter("seagull_fleet_wal_records_total", "Telemetry records committed to WALs, fleet-wide.", float64(v.Fleet.WALRecords))
	e.Counter("seagull_fleet_snapshots_total", "Incremental snapshots taken, fleet-wide.", float64(v.Fleet.Snapshots))

	return e.Flush()
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ExpoContentType)
	_ = rt.WriteMetrics(r.Context(), w)
}
