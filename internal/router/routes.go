package router

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"seagull/internal/serving"
)

// This file holds the traffic-bearing routes: predict routed by owner,
// batch/ingest split across shards and merged, stored predictions fanned out
// and unioned, and the stateless round-robin forwards.

// handlePredict routes one predict to the owner of its server ID. A request
// without a server ID carries its own history and is stateless — any replica
// serves it identically, so it round-robins.
func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req serving.PredictRequestV2
	if !rt.decode(w, r, &req) {
		return
	}
	var name string
	var client *serving.Client
	if req.ServerID != "" {
		name, client = rt.ownerClient(req.ServerID)
	} else {
		if req.LiveHistory {
			writeError(w, http.StatusBadRequest, serving.CodeBadRequest,
				"live_history requires server_id: the live window lives on the owning replica")
			return
		}
		name, client = rt.nextClient(nil)
	}
	resp, err := client.PredictV2(r.Context(), req)
	rt.observeForward(name, err)
	if err != nil {
		writeUpstream(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch splits a batch by item owner, fans the sub-batches out
// concurrently, and merges per-item results back in request order. A replica
// failure fails only the items it owned — the other shards' results are
// unaffected.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req serving.BatchRequest
	if !rt.decode(w, r, &req) {
		return
	}
	if len(req.Servers) == 0 {
		writeError(w, http.StatusBadRequest, serving.CodeBadRequest, "batch must contain at least one server")
		return
	}
	for i := range req.Servers {
		if req.Servers[i].ServerID == "" {
			writeError(w, http.StatusBadRequest, serving.CodeBadRequest,
				"servers["+strconv.Itoa(i)+"]: server_id is required")
			return
		}
	}
	smap, clients := rt.view()
	ids := make([]string, len(req.Servers))
	for i := range req.Servers {
		ids[i] = req.Servers[i].ServerID
	}
	parts := smap.Split(ids)

	out := serving.BatchResponse{Results: make([]serving.BatchItemResult, len(req.Servers))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for name, idxs := range parts {
		wg.Add(1)
		go func(name string, idxs []int) {
			defer wg.Done()
			sub := serving.BatchRequest{
				Scenario: req.Scenario,
				Region:   req.Region,
				Servers:  make([]serving.BatchItem, len(idxs)),
			}
			for j, i := range idxs {
				sub.Servers[j] = req.Servers[i]
			}
			resp, err := clients[name].PredictBatch(r.Context(), sub)
			rt.observeForward(name, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				body := upstreamErrorBody(name, err)
				for _, i := range idxs {
					out.Results[i] = serving.BatchItemResult{
						ServerID: req.Servers[i].ServerID, LLStart: -1, Error: body,
					}
				}
				out.Failed += len(idxs)
				return
			}
			if out.Model == "" {
				out.Model, out.Version = resp.Model, resp.Version
			}
			for j, i := range idxs {
				if j < len(resp.Results) {
					out.Results[i] = resp.Results[j]
				}
			}
			out.Succeeded += resp.Succeeded
			out.Failed += resp.Failed
		}(name, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// handleIngest splits the batch's series and points by owner, broadcasts the
// optional sweep clause to every replica (each sweeps its own ring), fans
// out concurrently, and sums the tallies. Appends are idempotent on every
// replica, so a client that sees an error from a partially-applied fan-out
// simply re-sends the whole batch.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req serving.IngestRequest
	if !rt.decode(w, r, &req) {
		return
	}
	smap, clients := rt.view()
	names := smap.Replicas()
	subs := make(map[string]*serving.IngestRequest, len(names))
	sub := func(name string) *serving.IngestRequest {
		s, ok := subs[name]
		if !ok {
			s = &serving.IngestRequest{Sweep: req.Sweep}
			subs[name] = s
		}
		return s
	}
	for i := range req.Servers {
		sr := &req.Servers[i]
		if sr.ServerID == "" {
			writeError(w, http.StatusBadRequest, serving.CodeBadRequest,
				"servers["+strconv.Itoa(i)+"]: server_id is required")
			return
		}
		s := sub(smap.Owner(sr.ServerID))
		s.Servers = append(s.Servers, *sr)
	}
	for i := range req.Points {
		p := &req.Points[i]
		if p.ServerID == "" {
			writeError(w, http.StatusBadRequest, serving.CodeBadRequest,
				"points["+strconv.Itoa(i)+"]: server_id is required")
			return
		}
		s := sub(smap.Owner(p.ServerID))
		s.Points = append(s.Points, *p)
	}
	if req.Sweep != nil {
		// The sweep must cover every shard, including those this batch
		// carried no points for.
		for _, name := range names {
			sub(name)
		}
	}
	if len(subs) == 0 {
		writeError(w, http.StatusBadRequest, serving.CodeBadRequest, "ingest batch must contain at least one point")
		return
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var merged serving.IngestResponse
	var firstErr error
	var firstErrName string
	for name, s := range subs {
		wg.Add(1)
		go func(name string, s *serving.IngestRequest) {
			defer wg.Done()
			resp, err := clients[name].Ingest(r.Context(), *s)
			rt.observeForward(name, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr, firstErrName = err, name
				}
				return
			}
			merged.Accepted += resp.Accepted
			merged.Duplicates += resp.Duplicates
			merged.TooOld += resp.TooOld
			merged.TooNew += resp.TooNew
			merged.BadValues += resp.BadValues
			merged.Skipped += resp.Skipped
			if resp.Sweep != nil {
				if merged.Sweep == nil {
					merged.Sweep = &serving.SweepResult{
						Region: resp.Sweep.Region, Week: resp.Sweep.Week,
					}
				}
				merged.Sweep.Checked += resp.Sweep.Checked
				merged.Sweep.Drifted += resp.Sweep.Drifted
				merged.Sweep.Skipped += resp.Sweep.Skipped
				merged.Sweep.Queued += resp.Sweep.Queued
				merged.Sweep.Dropped += resp.Sweep.Dropped
				merged.Sweep.Servers = append(merged.Sweep.Servers, resp.Sweep.Servers...)
			}
		}(name, s)
	}
	wg.Wait()
	if firstErr != nil {
		// Idempotent appends make the whole batch safe to re-send; failing
		// loudly beats acknowledging points a dead replica never saw.
		writeUpstream(w, firstErrName, firstErr)
		return
	}
	if merged.Sweep != nil {
		sort.Strings(merged.Sweep.Servers)
	}
	writeJSON(w, http.StatusOK, merged)
}

// handlePredictions fans the stored-prediction query out to every replica
// and merges by server ID: replicas share a region's document store but a
// refresher republishes only its own shard, so the union is the fleet view.
func (rt *Router) handlePredictions(w http.ResponseWriter, r *http.Request) {
	region := r.PathValue("region")
	week, err := strconv.Atoi(r.PathValue("week"))
	if err != nil || region == "" {
		writeError(w, http.StatusBadRequest, serving.CodeBadRequest, "path must be /v2/predictions/{region}/{week}")
		return
	}
	smap, clients := rt.view()
	names := smap.Replicas()
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	var firstErrName string
	merged := serving.PredictionsResponse{Region: region, Week: week}
	seen := map[string]bool{}
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			resp, err := clients[name].Predictions(r.Context(), region, week)
			rt.observeForward(name, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr, firstErrName = err, name
				}
				return
			}
			for _, doc := range resp.Predictions {
				if doc != nil && !seen[doc.ServerID] {
					seen[doc.ServerID] = true
					merged.Predictions = append(merged.Predictions, doc)
				}
			}
		}(name)
	}
	wg.Wait()
	if firstErr != nil && len(merged.Predictions) == 0 {
		writeUpstream(w, firstErrName, firstErr)
		return
	}
	sort.Slice(merged.Predictions, func(i, j int) bool {
		return merged.Predictions[i].ServerID < merged.Predictions[j].ServerID
	})
	writeJSON(w, http.StatusOK, merged)
}

// proxy forwards one stateless request body to a replica and relays the
// JSON response, failing over to the next replica on a retryable error.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, method, path string, body json.RawMessage) {
	smap, _ := rt.view()
	n := smap.N()
	skip := map[string]bool{}
	var lastName string
	var lastErr error
	for attempt := 0; attempt < n; attempt++ {
		name, client := rt.nextClient(skip)
		if client == nil {
			break
		}
		var in any
		if body != nil {
			in = body
		}
		var out any
		err := client.Do(r.Context(), method, path, in, &out)
		rt.observeForward(name, err)
		if err == nil {
			writeJSON(w, http.StatusOK, out)
			return
		}
		lastName, lastErr = name, err
		var api *serving.APIError
		if errors.As(err, &api) && api.Status < 500 && api.Status != http.StatusTooManyRequests {
			// Definitive answer (bad request, not found): no point failing
			// over, every replica would agree.
			break
		}
		skip[name] = true
	}
	writeUpstream(w, lastName, lastErr)
}

// forwardJSON builds a handler that relays a POST body round-robin.
func (rt *Router) forwardJSON(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var raw json.RawMessage
		if !rt.decode(w, r, &raw) {
			return
		}
		rt.proxy(w, r, http.MethodPost, path, raw)
	}
}

// forwardGet builds a handler that relays a GET round-robin.
func (rt *Router) forwardGet(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.proxy(w, r, http.MethodGet, path, nil)
	}
}
