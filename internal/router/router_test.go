package router_test

// Router unit tests against scripted fake replicas: membership validation,
// readiness coverage, stateless failover, the drain/retry semantics of
// satellite endpoints (errors confined to the dead replica's shard, breaker
// opening, rejoin restoring coverage), and fleet observability rendering.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"seagull/internal/pipeline"
	"seagull/internal/router"
	"seagull/internal/serving"
)

// fake is a scripted replica: it answers the serving wire protocol with
// canned bodies and counts what it saw.
type fake struct {
	name string
	srv  *httptest.Server
	hits atomic.Uint64 // traffic-bearing requests (not readyz/varz)
}

func newFake(t *testing.T, name string) *fake {
	t.Helper()
	f := &fake{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("GET /varz", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(serving.Varz{})
	})
	mux.HandleFunc("POST /v2/predict", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		var req serving.PredictRequestV2
		_ = json.NewDecoder(r.Body).Decode(&req)
		_ = json.NewEncoder(w).Encode(serving.PredictResponseV2{
			ServerID: req.ServerID, Model: "fake-" + f.name,
		})
	})
	mux.HandleFunc("POST /v2/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		var req serving.BatchRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		out := serving.BatchResponse{Model: "fake-" + f.name, Succeeded: len(req.Servers)}
		for _, s := range req.Servers {
			out.Results = append(out.Results, serving.BatchItemResult{
				ServerID: s.ServerID, Forecast: &serving.SeriesJSON{Values: []float64{1}},
			})
		}
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("POST /v2/ingest", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		var req serving.IngestRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		resp := serving.IngestResponse{Accepted: len(req.Points)}
		if req.Sweep != nil {
			resp.Sweep = &serving.SweepResult{
				Region: req.Sweep.Region, Week: req.Sweep.Week,
				Checked: 1, Servers: []string{f.name + "-srv"},
			}
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /v2/models", func(w http.ResponseWriter, _ *http.Request) {
		f.hits.Add(1)
		_ = json.NewEncoder(w).Encode(serving.ModelsResponseV2{})
	})
	mux.HandleFunc("POST /v2/advise", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		_ = json.NewEncoder(w).Encode(serving.AdviseResponse{KeepCurrent: true})
	})
	mux.HandleFunc("GET /v2/predictions/{region}/{week}", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		_ = json.NewEncoder(w).Encode(serving.PredictionsResponse{
			Region: r.PathValue("region"),
			Predictions: []*pipeline.PredictionDoc{
				{ServerID: "shared-srv"},
				{ServerID: f.name + "-srv"},
			},
		})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, _ *http.Request) {
		f.hits.Add(1)
		_ = json.NewEncoder(w).Encode([]serving.ModelInfo{})
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, _ *http.Request) {
		f.hits.Add(1)
		_ = json.NewEncoder(w).Encode(serving.PredictResponse{Model: "fake-" + f.name})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newFakeFleet builds n scripted replicas and a fail-fast router (single
// attempt, breaker off unless asked) fronting them.
func newFakeFleet(t *testing.T, n int, mod func(*router.Config)) ([]*fake, *router.Router, *httptest.Server) {
	t.Helper()
	fakes := make([]*fake, n)
	cfg := router.Config{
		Seed:    7,
		Retry:   serving.RetryConfig{MaxAttempts: 1},
		Breaker: serving.BreakerConfig{Threshold: -1},
	}
	for i := range fakes {
		fakes[i] = newFake(t, fmt.Sprintf("shard-%c", 'a'+i))
		cfg.Replicas = append(cfg.Replicas, router.Replica{
			Name: fakes[i].name, BaseURL: fakes[i].srv.URL,
		})
	}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return fakes, rt, front
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, string(data)
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, string(data)
}

// ownedBy finds a server ID the map assigns to the wanted replica.
func ownedBy(t *testing.T, rt *router.Router, name string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		id := fmt.Sprintf("srv-%05d", i)
		if rt.Map().Owner(id) == name {
			return id
		}
	}
	t.Fatalf("no key hashes to %s", name)
	return ""
}

func TestNewValidation(t *testing.T) {
	if _, err := router.New(router.Config{}); err == nil {
		t.Error("no replicas must be rejected")
	}
	if _, err := router.New(router.Config{Replicas: []router.Replica{{Name: "a"}}}); err == nil {
		t.Error("missing base URL must be rejected")
	}
	if _, err := router.New(router.Config{Replicas: []router.Replica{
		{Name: "a", BaseURL: "http://x"}, {Name: "a", BaseURL: "http://y"},
	}}); err == nil {
		t.Error("duplicate replica names must be rejected")
	}
}

func TestJoinLeaveErrors(t *testing.T) {
	_, rt, _ := newFakeFleet(t, 2, nil)
	if err := rt.Join(router.Replica{Name: "new"}); err == nil {
		t.Error("join without base URL must fail")
	}
	if err := rt.Join(router.Replica{Name: "shard-a", BaseURL: "http://x"}); err == nil {
		t.Error("joining an existing member must fail")
	}
	if err := rt.Leave("ghost"); err == nil {
		t.Error("leaving an unknown member must fail")
	}
	if err := rt.Leave("shard-a"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Leave("shard-b"); err == nil {
		t.Error("the last member must not be allowed to leave")
	}
	if got := rt.Members(); len(got) != 1 || got[0] != "shard-b" {
		t.Fatalf("members = %v", got)
	}
}

func TestHealthAndReadyCoverage(t *testing.T) {
	fakes, _, front := newFakeFleet(t, 2, nil)
	if resp, body := get(t, front.URL+"/healthz"); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, front.URL+"/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz with full coverage: %d", resp.StatusCode)
	}
	fakes[1].srv.Close()
	resp, body := get(t, front.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a dead replica: %d", resp.StatusCode)
	}
	var st router.ReadyStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || !st.Replicas["shard-a"] || st.Replicas["shard-b"] {
		t.Fatalf("coverage misreported: %+v", st)
	}
}

func TestStatelessFailover(t *testing.T) {
	fakes, _, front := newFakeFleet(t, 2, nil)
	fakes[0].srv.Close()
	// Both GET and POST forwards must skip the dead replica. Two rounds so
	// the round-robin cursor starts on each replica at least once.
	for i := 0; i < 2; i++ {
		if resp, body := get(t, front.URL+"/v2/models"); resp.StatusCode != 200 {
			t.Fatalf("models failover: %d %s", resp.StatusCode, body)
		}
		if resp, body := post(t, front.URL+"/v2/advise", `{"predicted_day":{"values":[1]},"customer_start":0}`); resp.StatusCode != 200 || !strings.Contains(body, "keep_current") {
			t.Fatalf("advise failover: %d %s", resp.StatusCode, body)
		}
		if resp, _ := get(t, front.URL+"/v1/models"); resp.StatusCode != 200 {
			t.Fatalf("v1 models failover: %d", resp.StatusCode)
		}
		if resp, _ := post(t, front.URL+"/v1/predict", `{}`); resp.StatusCode != 200 {
			t.Fatalf("v1 predict failover: %d", resp.StatusCode)
		}
	}
	if fakes[1].hits.Load() == 0 {
		t.Fatal("surviving replica saw no traffic")
	}
}

func TestStatelessAllDown(t *testing.T) {
	fakes, _, front := newFakeFleet(t, 2, nil)
	fakes[0].srv.Close()
	fakes[1].srv.Close()
	resp, body := get(t, front.URL+"/v2/models")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 when every replica is down, got %d", resp.StatusCode)
	}
	if !strings.Contains(body, "unavailable") {
		t.Fatalf("body: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("retryable outage must carry Retry-After")
	}
}

func TestStatelessDefinitiveErrorPassesThrough(t *testing.T) {
	// One replica that answers 404 with a structured envelope: the router
	// must relay it verbatim without failing over.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/models", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such deployment"}}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	other := newFake(t, "other")
	rt, err := router.New(router.Config{
		Replicas: []router.Replica{
			{Name: "bad", BaseURL: srv.URL},
			{Name: "other", BaseURL: other.srv.URL},
		},
		Retry:   serving.RetryConfig{MaxAttempts: 1},
		Breaker: serving.BreakerConfig{Threshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	// Probe until the cursor lands on the bad replica.
	sawNotFound := false
	for i := 0; i < 4; i++ {
		resp, body := get(t, front.URL+"/v2/models")
		if resp.StatusCode == http.StatusNotFound {
			sawNotFound = true
			if !strings.Contains(body, "no such deployment") {
				t.Fatalf("error not relayed verbatim: %s", body)
			}
		}
	}
	if !sawNotFound {
		t.Fatal("definitive upstream error never surfaced")
	}
}

func TestPredictValidationAndRouting(t *testing.T) {
	fakes, rt, front := newFakeFleet(t, 2, nil)

	if resp, body := post(t, front.URL+"/v2/predict", `{"live_history":true}`); resp.StatusCode != 400 || !strings.Contains(body, "server_id") {
		t.Fatalf("live_history without server_id: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post(t, front.URL+"/v2/predict", `{bad json`); resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: %d", resp.StatusCode)
	}

	// With a server ID the request lands on the owner, bit-for-bit routed by
	// the map every router shares.
	id := ownedBy(t, rt, "shard-b")
	resp, body := post(t, front.URL+"/v2/predict", `{"server_id":"`+id+`","history":{"values":[1]}}`)
	if resp.StatusCode != 200 || !strings.Contains(body, "fake-shard-b") {
		t.Fatalf("owner routing: %d %s", resp.StatusCode, body)
	}
	if fakes[0].hits.Load() != 0 {
		t.Fatal("non-owner replica saw the routed predict")
	}

	// Without a server ID the request is stateless and round-robins: two
	// requests must land on two different replicas.
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		_, body := post(t, front.URL+"/v2/predict", `{"history":{"values":[1]}}`)
		var pr serving.PredictResponseV2
		_ = json.Unmarshal([]byte(body), &pr)
		seen[pr.Model] = true
	}
	if len(seen) != 2 {
		t.Fatalf("round-robin hit only %v", seen)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, _, front := newFakeFleet(t, 1, func(c *router.Config) { c.MaxBodyBytes = 64 })
	big := `{"history":{"values":[` + strings.Repeat("1,", 200) + `1]}}`
	resp, body := post(t, front.URL+"/v2/predict", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(body, "too_large") {
		t.Fatalf("oversized body: %d %s", resp.StatusCode, body)
	}
}

// TestBatchFailureConfinedAndBreaker is satellite drain/retry semantics: a
// replica killed mid-batch fails only its own items, repeated traffic trips
// its breaker, and a rejoin restores full coverage with no remapping.
func TestBatchFailureConfinedAndBreaker(t *testing.T) {
	fakes, rt, front := newFakeFleet(t, 2, func(c *router.Config) {
		c.Breaker = serving.BreakerConfig{Threshold: 2}
	})
	idA, idB := ownedBy(t, rt, "shard-a"), ownedBy(t, rt, "shard-b")
	fakes[1].srv.Close() // shard-b dies

	body := fmt.Sprintf(`{"servers":[{"server_id":"%s","history":{"values":[1]}},{"server_id":"%s","history":{"values":[1]}}]}`, idA, idB)
	resp, out := post(t, front.URL+"/v2/predict/batch", body)
	if resp.StatusCode != 200 {
		t.Fatalf("partial failure must still answer 200: %d %s", resp.StatusCode, out)
	}
	var br serving.BatchResponse
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatal(err)
	}
	if br.Succeeded != 1 || br.Failed != 1 {
		t.Fatalf("tallies %d/%d, want 1 succeeded 1 failed", br.Succeeded, br.Failed)
	}
	for _, res := range br.Results {
		switch res.ServerID {
		case idA:
			if res.Error != nil || res.Forecast == nil {
				t.Fatalf("healthy shard's item failed: %+v", res)
			}
		case idB:
			if res.Error == nil || !strings.Contains(res.Error.Message, "shard-b") {
				t.Fatalf("dead shard's item must carry its replica's error: %+v", res.Error)
			}
		default:
			t.Fatalf("unknown result %q", res.ServerID)
		}
	}

	// Keep hitting the dead owner: the second consecutive failure opens the
	// breaker, and from then on the path fails fast.
	var sawOpen bool
	for i := 0; i < 4; i++ {
		_, out := post(t, front.URL+"/v2/predict", `{"server_id":"`+idB+`","history":{"values":[1]}}`)
		if strings.Contains(out, "circuit") {
			sawOpen = true
			break
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened against the dead replica")
	}

	// Rejoin under the same name at a fresh address: same map, fresh client,
	// full coverage back.
	replacement := newFake(t, "shard-b")
	if err := rt.Leave("shard-b"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Join(router.Replica{Name: "shard-b", BaseURL: replacement.srv.URL}); err != nil {
		t.Fatal(err)
	}
	resp, out = post(t, front.URL+"/v2/predict", `{"server_id":"`+idB+`","history":{"values":[1]}}`)
	if resp.StatusCode != 200 || !strings.Contains(out, "fake-shard-b") {
		t.Fatalf("rejoined replica not serving: %d %s", resp.StatusCode, out)
	}
}

func TestIngestValidationAndSweepBroadcast(t *testing.T) {
	fakes, rt, front := newFakeFleet(t, 2, nil)

	if resp, _ := post(t, front.URL+"/v2/ingest", `{}`); resp.StatusCode != 400 {
		t.Fatalf("empty ingest: %d", resp.StatusCode)
	}
	if resp, _ := post(t, front.URL+"/v2/ingest", `{"points":[{"t":1,"v":1}]}`); resp.StatusCode != 400 {
		t.Fatalf("point without server_id: %d", resp.StatusCode)
	}
	if resp, _ := post(t, front.URL+"/v2/ingest", `{"servers":[{"start":"2020-01-01T00:00:00Z"}]}`); resp.StatusCode != 400 {
		t.Fatalf("series without server_id: %d", resp.StatusCode)
	}

	// A sweep-only request must reach every replica, and the merged result
	// must sum tallies and union server lists.
	idA := ownedBy(t, rt, "shard-a")
	resp, out := post(t, front.URL+"/v2/ingest",
		`{"points":[{"server_id":"`+idA+`","t":1,"v":1}],"sweep":{"region":"westus","week":1}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep broadcast: %d %s", resp.StatusCode, out)
	}
	var ir serving.IngestResponse
	if err := json.Unmarshal([]byte(out), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Sweep == nil || ir.Sweep.Checked != 2 || len(ir.Sweep.Servers) != 2 {
		t.Fatalf("sweep must cover both shards: %+v", ir.Sweep)
	}
	for _, f := range fakes {
		if f.hits.Load() == 0 {
			t.Fatalf("replica %s never swept", f.name)
		}
	}

	// A dead owner fails the batch loudly with a retryable status — the
	// idempotent appends make the client's re-send safe.
	fakes[0].srv.Close()
	resp, _ = post(t, front.URL+"/v2/ingest", `{"points":[{"server_id":"`+idA+`","t":1,"v":1}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("dead owner must be a retryable 503: %d", resp.StatusCode)
	}
}

func TestPredictionsUnion(t *testing.T) {
	fakes, _, front := newFakeFleet(t, 2, nil)
	resp, out := get(t, front.URL+"/v2/predictions/westus/3")
	if resp.StatusCode != 200 {
		t.Fatalf("predictions: %d %s", resp.StatusCode, out)
	}
	var pr serving.PredictionsResponse
	if err := json.Unmarshal([]byte(out), &pr); err != nil {
		t.Fatal(err)
	}
	// Each fake returns {shared-srv, <name>-srv}: the union is 3 docs,
	// deduplicated and sorted by server ID.
	if len(pr.Predictions) != 3 {
		t.Fatalf("union holds %d docs, want 3: %s", len(pr.Predictions), out)
	}
	for i := 1; i < len(pr.Predictions); i++ {
		if pr.Predictions[i-1].ServerID >= pr.Predictions[i].ServerID {
			t.Fatalf("union not sorted: %s", out)
		}
	}
	if resp, _ := get(t, front.URL+"/v2/predictions/westus/x"); resp.StatusCode != 400 {
		t.Fatalf("non-numeric week: %d", resp.StatusCode)
	}

	// One replica down: the surviving shard's docs still serve.
	fakes[0].srv.Close()
	resp, out = get(t, front.URL+"/v2/predictions/westus/3")
	if resp.StatusCode != 200 {
		t.Fatalf("partial predictions: %d", resp.StatusCode)
	}
	_ = json.Unmarshal([]byte(out), &pr)
	if len(pr.Predictions) != 2 {
		t.Fatalf("surviving docs %d, want 2", len(pr.Predictions))
	}
	// Both down: the error surfaces.
	fakes[1].srv.Close()
	if resp, _ := get(t, front.URL+"/v2/predictions/westus/3"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predictions with no replicas: %d", resp.StatusCode)
	}
}

func TestFleetVarzAndMetrics(t *testing.T) {
	fakes, rt, front := newFakeFleet(t, 2, nil)
	post(t, front.URL+"/v2/predict", `{bad`) // one route error for the counters

	var fv router.FleetVarz
	resp, out := get(t, front.URL+"/varz")
	if resp.StatusCode != 200 {
		t.Fatalf("varz: %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(out), &fv); err != nil {
		t.Fatal(err)
	}
	if len(fv.Members) != 2 || fv.ReadyReplicas != 2 {
		t.Fatalf("fleet view: %+v", fv)
	}
	rv := fv.Routes["POST /v2/predict"]
	if rv.Count != 1 || rv.Errors != 1 {
		t.Fatalf("route counters: %+v", fv.Routes)
	}
	for name, rep := range fv.Replicas {
		if !rep.Ready || rep.Varz == nil {
			t.Fatalf("replica %s: %+v", name, rep)
		}
	}

	resp, out = get(t, front.URL+"/metrics")
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"seagull_router_replicas 2",
		"seagull_router_ready_replicas 2",
		`seagull_router_requests_total{route="POST /v2/predict"} 1`,
		`seagull_router_replica_up{replica="shard-a"} 1`,
		"seagull_fleet_servers",
		"seagull_fleet_wal_commits_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}

	// A dead replica flips its up-gauge and records an error in varz.
	fakes[1].srv.Close()
	fv = rt.FleetVarz(context.Background())
	if fv.ReadyReplicas != 1 || fv.Replicas["shard-b"].Error == "" {
		t.Fatalf("dead replica not reflected: %+v", fv.Replicas["shard-b"])
	}
	var buf bytes.Buffer
	rec := httptest.NewRecorder()
	if err := rt.WriteMetrics(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	buf.ReadFrom(rec.Result().Body)
	if !strings.Contains(buf.String(), `seagull_router_replica_up{replica="shard-b"} 0`) {
		t.Fatal("dead replica still reported up")
	}
}
