// Package classify implements Seagull's Feature Extraction module: per-server
// features (lifespan, load statistics) and the classification of servers into
// the taxonomy of Section 3.2 — short-lived vs long-lived (Definition 3),
// stable (Definition 4), daily pattern (Definition 5), weekly pattern
// (Definition 6) and servers without any pattern.
//
// The classification drives model choice (Section 5.2) and reproduces the
// population breakdown of Figure 3.
//
// Concurrency: Categorize and the feature helpers are pure; a Scratch is
// single-goroutine state — parallel sweeps allocate one per worker (see
// parallel.ForEachScratch). Equivalence: CategorizeScratch is pinned
// bit-identical to Categorize (scratch_test.go); buffer reuse is never
// allowed to change a verdict.
package classify

import (
	"errors"
	"fmt"

	"seagull/internal/metrics"
	"seagull/internal/timeseries"
)

// LongLivedDays is the lifespan threshold of Definition 3: servers that
// existed more than three weeks are long-lived.
const LongLivedDays = 21

// Category is a leaf of the server taxonomy in Figure 3.
type Category int

const (
	// ShortLived servers existed for at most three weeks (Definition 3) and
	// are excluded from further consideration.
	ShortLived Category = iota
	// Stable long-lived servers are accurately predicted by their average
	// load (Definition 4).
	Stable
	// DailyPattern long-lived servers repeat the previous day's load
	// (Definition 5).
	DailyPattern
	// WeeklyPattern long-lived servers repeat the previous equivalent day's
	// load without following a daily pattern (Definition 6).
	WeeklyPattern
	// NoPattern long-lived servers are neither stable nor follow a daily or
	// weekly pattern; they tend to be unpredictable.
	NoPattern
)

// String returns the category name used in experiment output.
func (c Category) String() string {
	switch c {
	case ShortLived:
		return "short-lived"
	case Stable:
		return "stable"
	case DailyPattern:
		return "daily-pattern"
	case WeeklyPattern:
		return "weekly-pattern"
	case NoPattern:
		return "no-pattern"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Features is the per-server feature vector the Feature Extraction module
// computes for model selection and monitoring.
type Features struct {
	LifespanDays int
	MeanLoad     float64
	StdLoad      float64
	MaxLoad      float64
	MissingRatio float64
	// StableRatio is the bucket ratio of the average-load prediction
	// (the Definition 4 test statistic).
	StableRatio float64
	Category    Category
}

// Scratch carries the reusable buffer of one classification worker: the
// constant prediction series the Definition 4 stability test compares
// against. Classification sweeps (fig3 runs four regions of servers) thread
// one Scratch per pool worker via parallel.ForEachScratch so the buffer is
// allocated once per worker instead of once per server. The zero value is
// ready to use; a Scratch is not safe for concurrent use.
type Scratch struct {
	pred []float64
}

// buf returns the scratch buffer resized to n observations.
func (sc *Scratch) buf(n int) []float64 {
	if cap(sc.pred) < n {
		sc.pred = make([]float64, n)
	}
	return sc.pred[:n]
}

// IsStable (Definition 4) reports whether load is accurately predicted by a
// constant series at its own average, together with the bucket ratio.
func IsStable(load timeseries.Series, cfg metrics.Config) (bool, float64, error) {
	return IsStableScratch(load, cfg, &Scratch{})
}

// IsStableScratch is IsStable over a worker's scratch buffer: the constant
// prediction reuses sc's storage instead of cloning the load series. The
// verdict is bit-identical to IsStable — the comparison only reads values.
func IsStableScratch(load timeseries.Series, cfg metrics.Config, sc *Scratch) (bool, float64, error) {
	avg := load.Mean()
	vals := sc.buf(load.Len())
	for i := range vals {
		vals[i] = avg
	}
	pred := timeseries.New(load.Start, load.Interval, vals)
	ok, ratio, err := metrics.Accurate(load, pred, cfg)
	if err != nil {
		return false, 0, err
	}
	return ok, ratio, nil
}

// HasDailyPattern (Definition 5) reports whether every day of load is
// accurately predicted by the previous day. Requires at least two whole
// days. Days are compared through zero-copy views of the load series.
func HasDailyPattern(load timeseries.Series, cfg metrics.Config) (bool, error) {
	ppd := load.PointsPerDay()
	n := load.NumDays()
	if n < 2 {
		return false, nil
	}
	for d := 1; d < n; d++ {
		cur, err1 := load.View(d*ppd, (d+1)*ppd)
		prev, err2 := load.View((d-1)*ppd, d*ppd)
		if err1 != nil || err2 != nil {
			return false, errors.Join(err1, err2)
		}
		ok, _, err := metrics.Accurate(cur, prev, cfg)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// HasWeeklyPattern (Definition 6) reports whether every day of load is
// accurately predicted by the previous equivalent day of the week. Requires
// at least eight whole days. Note that Definition 6 additionally demands the
// absence of a daily pattern; Categorize enforces that ordering.
func HasWeeklyPattern(load timeseries.Series, cfg metrics.Config) (bool, error) {
	ppd := load.PointsPerDay()
	n := load.NumDays()
	if n < 8 {
		return false, nil
	}
	for d := 7; d < n; d++ {
		cur, err1 := load.View(d*ppd, (d+1)*ppd)
		prev, err2 := load.View((d-7)*ppd, (d-6)*ppd)
		if err1 != nil || err2 != nil {
			return false, errors.Join(err1, err2)
		}
		ok, _, err := metrics.Accurate(cur, prev, cfg)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Categorize classifies a server from its load history and lifespan in days,
// applying Definitions 3–6 in the paper's order: lifespan gate first, then
// stability, then daily before weekly.
func Categorize(load timeseries.Series, lifespanDays int, cfg metrics.Config) (Category, error) {
	return CategorizeScratch(load, lifespanDays, cfg, &Scratch{})
}

// CategorizeScratch is Categorize over a worker's scratch buffer; results
// are bit-identical to Categorize.
func CategorizeScratch(load timeseries.Series, lifespanDays int, cfg metrics.Config, sc *Scratch) (Category, error) {
	if lifespanDays <= LongLivedDays {
		return ShortLived, nil
	}
	stable, _, err := IsStableScratch(load, cfg, sc)
	if err != nil {
		return NoPattern, err
	}
	if stable {
		return Stable, nil
	}
	daily, err := HasDailyPattern(load, cfg)
	if err != nil {
		return NoPattern, err
	}
	if daily {
		return DailyPattern, nil
	}
	weekly, err := HasWeeklyPattern(load, cfg)
	if err != nil {
		return NoPattern, err
	}
	if weekly {
		return WeeklyPattern, nil
	}
	return NoPattern, nil
}

// Extract computes the full feature vector for one server.
func Extract(load timeseries.Series, lifespanDays int, cfg metrics.Config) (Features, error) {
	cat, err := Categorize(load, lifespanDays, cfg)
	if err != nil {
		return Features{}, err
	}
	_, stableRatio, err := IsStable(load, cfg)
	if err != nil {
		return Features{}, err
	}
	maxLoad, _ := load.Max()
	missing := 0.0
	if load.Len() > 0 {
		missing = float64(load.MissingCount()) / float64(load.Len())
	}
	return Features{
		LifespanDays: lifespanDays,
		MeanLoad:     load.Mean(),
		StdLoad:      load.Std(),
		MaxLoad:      maxLoad,
		MissingRatio: missing,
		StableRatio:  stableRatio,
		Category:     cat,
	}, nil
}

// Summary is the population breakdown of Figure 3.
type Summary struct {
	Total  int
	Counts map[Category]int
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{Counts: make(map[Category]int)}
}

// Add folds one categorized server into the summary.
func (s *Summary) Add(c Category) {
	s.Total++
	s.Counts[c]++
}

// Pct returns the share of category c in the population.
func (s *Summary) Pct(c Category) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Counts[c]) / float64(s.Total)
}

// PctLongLived returns the share of servers that survived beyond three weeks.
func (s *Summary) PctLongLived() float64 {
	return 1 - s.Pct(ShortLived)
}

// PctPredictableExpected returns the share of servers whose load is either
// stable or conforms to a pattern — the population the paper expects to be
// predictable (53.7% in Figure 3).
func (s *Summary) PctPredictableExpected() float64 {
	return s.Pct(Stable) + s.Pct(DailyPattern) + s.Pct(WeeklyPattern)
}

// String renders the Figure 3 style breakdown.
func (s *Summary) String() string {
	return fmt.Sprintf(
		"total=%d short-lived=%.1f%% stable=%.1f%% daily=%.2f%% weekly=%.2f%% no-pattern=%.1f%%",
		s.Total, 100*s.Pct(ShortLived), 100*s.Pct(Stable),
		100*s.Pct(DailyPattern), 100*s.Pct(WeeklyPattern), 100*s.Pct(NoPattern))
}
