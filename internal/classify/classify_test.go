package classify

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"seagull/internal/metrics"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

var t0 = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

// mkDays builds a series from per-day slot functions at 5-minute granularity.
func mkDays(days int, f func(day, slot int) float64) timeseries.Series {
	const ppd = 288
	vals := make([]float64, days*ppd)
	for d := 0; d < days; d++ {
		for s := 0; s < ppd; s++ {
			vals[d*ppd+s] = f(d, s)
		}
	}
	return timeseries.New(t0, 5*time.Minute, vals)
}

func TestIsStableFlatSeries(t *testing.T) {
	cfg := metrics.DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	s := mkDays(28, func(d, sl int) float64 { return 30 + rng.NormFloat64()*1.5 })
	ok, ratio, err := IsStable(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || ratio < 0.95 {
		t.Errorf("flat series: stable=%v ratio=%v", ok, ratio)
	}
}

func TestIsStableRejectsBimodal(t *testing.T) {
	cfg := metrics.DefaultConfig()
	// Half the day at 10, half at 60: the average (35) predicts neither.
	s := mkDays(28, func(d, sl int) float64 {
		if sl < 144 {
			return 10
		}
		return 60
	})
	ok, _, err := IsStable(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("bimodal series must not be stable")
	}
}

func TestHasDailyPattern(t *testing.T) {
	cfg := metrics.DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	// Strong business-hours bump repeated every day.
	s := mkDays(28, func(d, sl int) float64 {
		v := 10.0
		if sl >= 100 && sl < 200 {
			v = 70
		}
		return v + rng.NormFloat64()
	})
	ok, err := HasDailyPattern(s, cfg)
	if err != nil || !ok {
		t.Errorf("daily series: ok=%v err=%v", ok, err)
	}
	// The same series is NOT stable.
	stable, _, _ := IsStable(s, cfg)
	if stable {
		t.Error("daily series must not be stable")
	}
}

func TestHasDailyPatternRejectsShift(t *testing.T) {
	cfg := metrics.DefaultConfig()
	// Bump shifts by 4 hours every day.
	s := mkDays(10, func(d, sl int) float64 {
		start := (100 + d*48) % 288
		if sl >= start && sl < start+60 {
			return 70
		}
		return 10
	})
	ok, err := HasDailyPattern(s, cfg)
	if err != nil || ok {
		t.Errorf("shifting bump should not be a daily pattern (ok=%v err=%v)", ok, err)
	}
}

func TestHasDailyPatternNeedsTwoDays(t *testing.T) {
	cfg := metrics.DefaultConfig()
	s := mkDays(1, func(d, sl int) float64 { return 10 })
	ok, err := HasDailyPattern(s, cfg)
	if err != nil || ok {
		t.Error("single day cannot establish a daily pattern")
	}
}

func TestHasWeeklyPattern(t *testing.T) {
	cfg := metrics.DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	// Weekday-dependent amplitude, repeated exactly week over week.
	amp := [7]float64{5, 70, 40, 70, 40, 70, 20}
	s := mkDays(28, func(d, sl int) float64 {
		v := 8.0
		if sl >= 96 && sl < 192 {
			v += amp[d%7]
		}
		return v + rng.NormFloat64()
	})
	weekly, err := HasWeeklyPattern(s, cfg)
	if err != nil || !weekly {
		t.Errorf("weekly series: weekly=%v err=%v", weekly, err)
	}
	daily, _ := HasDailyPattern(s, cfg)
	if daily {
		t.Error("weekly series with alternating amplitudes must not be daily")
	}
}

func TestHasWeeklyPatternNeedsEightDays(t *testing.T) {
	cfg := metrics.DefaultConfig()
	s := mkDays(7, func(d, sl int) float64 { return 10 })
	ok, err := HasWeeklyPattern(s, cfg)
	if err != nil || ok {
		t.Error("seven days cannot establish a weekly pattern")
	}
}

func TestCategorizeShortLived(t *testing.T) {
	cfg := metrics.DefaultConfig()
	s := mkDays(5, func(d, sl int) float64 { return 10 })
	cat, err := Categorize(s, 5, cfg)
	if err != nil || cat != ShortLived {
		t.Errorf("cat=%v err=%v", cat, err)
	}
	// Exactly 21 days is still short-lived ("more than three weeks" is long).
	cat, _ = Categorize(s, 21, cfg)
	if cat != ShortLived {
		t.Errorf("21 days should be short-lived, got %v", cat)
	}
}

func TestCategorizeOrdering(t *testing.T) {
	cfg := metrics.DefaultConfig()
	rng := rand.New(rand.NewSource(4))
	// A stable series trivially passes daily and weekly checks too; the
	// classification must call it Stable (paper's ordering).
	s := mkDays(28, func(d, sl int) float64 { return 25 + rng.NormFloat64() })
	cat, err := Categorize(s, 28, cfg)
	if err != nil || cat != Stable {
		t.Errorf("cat=%v err=%v, want Stable", cat, err)
	}
}

func TestCategorizeNoPattern(t *testing.T) {
	cfg := metrics.DefaultConfig()
	rng := rand.New(rand.NewSource(5))
	// Random bursts, different every day.
	s := mkDays(28, func(d, sl int) float64 {
		base := 10 + float64((d*37)%30)
		if (sl+d*61)%97 < 20 {
			base += 50
		}
		return base + rng.NormFloat64()
	})
	cat, err := Categorize(s, 28, cfg)
	if err != nil || cat != NoPattern {
		t.Errorf("cat=%v err=%v, want NoPattern", cat, err)
	}
}

func TestExtractFeatures(t *testing.T) {
	cfg := metrics.DefaultConfig()
	rng := rand.New(rand.NewSource(6))
	s := mkDays(28, func(d, sl int) float64 { return 40 + rng.NormFloat64() })
	s.Values[0] = timeseries.Missing
	f, err := Extract(s, 28, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Category != Stable {
		t.Errorf("category = %v", f.Category)
	}
	if math.Abs(f.MeanLoad-40) > 1 {
		t.Errorf("mean = %v", f.MeanLoad)
	}
	if f.MissingRatio <= 0 {
		t.Error("missing ratio should be positive")
	}
	if f.LifespanDays != 28 {
		t.Errorf("lifespan = %d", f.LifespanDays)
	}
	if f.MaxLoad < 40 {
		t.Errorf("max = %v", f.MaxLoad)
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	s.Add(Stable)
	s.Add(Stable)
	s.Add(ShortLived)
	s.Add(NoPattern)
	if s.Total != 4 || s.Counts[Stable] != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.Pct(Stable) != 0.5 || s.PctLongLived() != 0.75 {
		t.Errorf("pcts: stable=%v long=%v", s.Pct(Stable), s.PctLongLived())
	}
	if s.PctPredictableExpected() != 0.5 {
		t.Errorf("predictable expected = %v", s.PctPredictableExpected())
	}
	if s.String() == "" {
		t.Error("String should render")
	}
	if (&Summary{Counts: map[Category]int{}}).Pct(Stable) != 0 {
		t.Error("empty summary Pct should be 0")
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		ShortLived: "short-lived", Stable: "stable", DailyPattern: "daily-pattern",
		WeeklyPattern: "weekly-pattern", NoPattern: "no-pattern", Category(99): "category(99)",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// Calibration test: classifying a generated fleet reproduces the Figure 3
// population shares. This is the linchpin connecting the simulator to the
// paper's evaluation.
func TestFigure3Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test is slow")
	}
	cfg := metrics.DefaultConfig()
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "calib", Servers: 1200, Weeks: 4, Seed: 42,
	})
	sum := NewSummary()
	for _, srv := range fleet.Servers {
		cat, err := Categorize(srv.Load(), srv.LifespanDays(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", srv.ID, err)
		}
		sum.Add(cat)
	}
	t.Logf("classification: %s", sum)

	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
		}
	}
	check("short-lived", sum.Pct(ShortLived), 0.421, 0.05)
	check("stable", sum.Pct(Stable), 0.535, 0.06)
	check("no-pattern", sum.Pct(NoPattern), 0.042, 0.03)
	check("long-lived", sum.PctLongLived(), 0.58, 0.05)
	check("predictable-expected", sum.PctPredictableExpected(), 0.537, 0.06)
	// Daily and weekly are rare (0.2% combined) but must exist in a fleet of
	// this size only probabilistically; just assert they are not dominant.
	if sum.Pct(DailyPattern)+sum.Pct(WeeklyPattern) > 0.02 {
		t.Errorf("daily+weekly = %.3f, should be tiny", sum.Pct(DailyPattern)+sum.Pct(WeeklyPattern))
	}
}

// The generator's class labels and the classifier's categories must agree
// for long-lived servers when each class is generated in isolation.
func TestClassRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := metrics.DefaultConfig()
	cases := []struct {
		mix  simulate.Mix
		want Category
	}{
		{simulate.Mix{Stable: 1}, Stable},
		{simulate.Mix{Daily: 1}, DailyPattern},
		{simulate.Mix{Weekly: 1}, WeeklyPattern},
		{simulate.Mix{NoPattern: 1}, NoPattern},
	}
	for _, c := range cases {
		fleet := simulate.GenerateFleet(simulate.Config{
			Region: "rec", Servers: 60, Weeks: 4, Seed: 11, Mix: c.mix,
		})
		hit := 0
		for _, srv := range fleet.Servers {
			cat, err := Categorize(srv.Load(), srv.LifespanDays(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if cat == c.want {
				hit++
			}
		}
		rate := float64(hit) / float64(len(fleet.Servers))
		if rate < 0.8 {
			t.Errorf("class %v recovered at %.2f (want ≥ 0.8)", c.want, rate)
		}
	}
}
