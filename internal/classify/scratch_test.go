package classify

import (
	"math/rand"
	"testing"
	"time"

	"seagull/internal/metrics"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

// TestCategorizeScratchEquivalent pins the arena path: classifying a mixed
// fleet through one reused Scratch must agree with the scratch-free path on
// every server, including the stability ratio.
func TestCategorizeScratchEquivalent(t *testing.T) {
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "scratch-eq", Servers: 40, Weeks: 4, Seed: 11,
	})
	cfg := metrics.DefaultConfig()
	sc := &Scratch{}
	for _, srv := range fleet.Servers {
		want, err1 := Categorize(srv.Load(), srv.LifespanDays(), cfg)
		got, err2 := CategorizeScratch(srv.Load(), srv.LifespanDays(), cfg, sc)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: err mismatch %v vs %v", srv.ID, err1, err2)
		}
		if want != got {
			t.Errorf("%s: Categorize=%v CategorizeScratch=%v", srv.ID, want, got)
		}

		_, wantRatio, err1 := IsStable(srv.Load(), cfg)
		_, gotRatio, err2 := IsStableScratch(srv.Load(), cfg, sc)
		if (err1 == nil) != (err2 == nil) || wantRatio != gotRatio {
			t.Errorf("%s: stability ratio %v (%v) vs %v (%v)", srv.ID, wantRatio, err1, gotRatio, err2)
		}
	}
}

// TestScratchBufferShrinksAndGrows exercises reuse across series of varying
// length: a longer series after a shorter one must regrow the buffer, and a
// shorter one must not read stale suffix values.
func TestScratchBufferShrinksAndGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := metrics.DefaultConfig()
	sc := &Scratch{}
	start := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	for _, days := range []int{2, 7, 3, 14, 1} {
		vals := make([]float64, days*288)
		for i := range vals {
			vals[i] = 30 + 5*rng.Float64()
		}
		s := timeseries.New(start, 5*time.Minute, vals)
		want, wantRatio, _ := IsStable(s, cfg)
		got, gotRatio, _ := IsStableScratch(s, cfg, sc)
		if want != got || wantRatio != gotRatio {
			t.Errorf("days=%d: %v/%v vs %v/%v", days, want, wantRatio, got, gotRatio)
		}
	}
}
