// Package registry implements Seagull's Model Deployment and Tracking
// modules (Section 2.2): versioned model deployments per (region, scenario),
// promotion of newly trained models, and automatic fallback to the previous
// known-good version when accuracy regresses — "Seagull continually
// re-evaluates accuracy of predictions, falls back to previously known good
// models and triggers alerts as appropriate".
//
// Concurrency: the Registry is safe for concurrent use. Watch subscribes a
// callback to deployment changes (Deploy/Fallback); callbacks run
// synchronously under the registry lock, so they must be fast and must not
// call back into the registry — the serving pool uses them only to bump
// invalidation generations.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"seagull/internal/simclock"
)

// Common errors.
var (
	ErrNoDeployment = errors.New("registry: no deployment")
	ErrBadVersion   = errors.New("registry: unknown version")
)

// Status of a deployed model version.
type Status string

// Deployment statuses.
const (
	StatusActive     Status = "active"      // serving traffic
	StatusRetired    Status = "retired"     // replaced by a newer version
	StatusRolledBack Status = "rolled-back" // demoted after an accuracy regression
)

// Version is one tracked model deployment.
type Version struct {
	Number    int
	ModelName string    // forecast model registry name
	Deployed  time.Time // deployment wall-clock time
	Status    Status
	// Accuracy is the most recent fleet accuracy (fraction of correctly
	// chosen LL windows) recorded for this version; negative until evaluated.
	Accuracy float64
	// Notes carries free-form deployment context (training week, region).
	Notes string
}

// Target identifies a deployment slot: one scenario in one region.
type Target struct {
	Scenario string
	Region   string
}

func (t Target) String() string { return t.Scenario + "/" + t.Region }

// Registry tracks deployments per target. It is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	targets   map[Target][]*Version // version history, oldest first
	clock     simclock.Clock
	watchers  map[int]func(Target)
	nextWatch int
}

// New returns an empty registry. clock may be nil for wall time; tests and
// the simulated pipeline inject their own.
func New(clock simclock.Clock) *Registry {
	return &Registry{targets: map[Target][]*Version{}, clock: simclock.Or(clock)}
}

// Watch registers fn to be called whenever a target's active version changes
// (Deploy promotions and Fallback rollbacks). fn runs synchronously on the
// mutating goroutine, after the registry lock is released, so it may call
// back into the registry; it must not block for long. The returned unwatch
// removes the registration (idempotent) — a component that does not outlive
// the registry must call it, or its watcher (and everything the closure
// pins) stays reachable for the registry's lifetime.
func (r *Registry) Watch(fn func(Target)) (unwatch func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.watchers == nil {
		r.watchers = map[int]func(Target){}
	}
	id := r.nextWatch
	r.nextWatch++
	r.watchers[id] = fn
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		delete(r.watchers, id)
	}
}

// notify invokes every watcher for target. Callers must NOT hold r.mu.
func (r *Registry) notify(target Target) {
	r.mu.RLock()
	watchers := make([]func(Target), 0, len(r.watchers))
	for _, fn := range r.watchers {
		watchers = append(watchers, fn)
	}
	r.mu.RUnlock()
	for _, fn := range watchers {
		fn(target)
	}
}

// Deploy records a new active version of modelName at target, retiring the
// previous active version. It returns the new version number (1-based).
func (r *Registry) Deploy(target Target, modelName, notes string) int {
	r.mu.Lock()
	hist := r.targets[target]
	for _, v := range hist {
		if v.Status == StatusActive {
			v.Status = StatusRetired
		}
	}
	v := &Version{
		Number:    len(hist) + 1,
		ModelName: modelName,
		Deployed:  r.clock.Now(),
		Status:    StatusActive,
		Accuracy:  -1,
		Notes:     notes,
	}
	r.targets[target] = append(hist, v)
	number := v.Number
	r.mu.Unlock()
	r.notify(target)
	return number
}

// Active returns the currently serving version for target.
func (r *Registry) Active(target Target) (Version, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := len(r.targets[target]) - 1; i >= 0; i-- {
		if v := r.targets[target][i]; v.Status == StatusActive {
			return *v, nil
		}
	}
	return Version{}, fmt.Errorf("%w: %s", ErrNoDeployment, target)
}

// RecordAccuracy stores the latest evaluated accuracy for a version.
func (r *Registry) RecordAccuracy(target Target, version int, accuracy float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	hist := r.targets[target]
	if version < 1 || version > len(hist) {
		return fmt.Errorf("%w: %s v%d", ErrBadVersion, target, version)
	}
	hist[version-1].Accuracy = accuracy
	return nil
}

// Fallback demotes the active version (marking it rolled back) and
// re-activates the most recent previous version whose recorded accuracy is at
// least minAccuracy — the known-good fallback of Section 2.2. It returns the
// re-activated version, or ErrNoDeployment when no known-good version exists
// (the active version stays demoted either way; callers should alert).
func (r *Registry) Fallback(target Target, minAccuracy float64) (Version, error) {
	r.mu.Lock()
	hist := r.targets[target]
	var active *Version
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].Status == StatusActive {
			active = hist[i]
			break
		}
	}
	if active == nil {
		r.mu.Unlock()
		return Version{}, fmt.Errorf("%w: %s", ErrNoDeployment, target)
	}
	active.Status = StatusRolledBack
	for i := len(hist) - 1; i >= 0; i-- {
		v := hist[i]
		if v.Number == active.Number {
			continue
		}
		if v.Accuracy >= minAccuracy {
			v.Status = StatusActive
			out := *v
			r.mu.Unlock()
			r.notify(target)
			return out, nil
		}
	}
	r.mu.Unlock()
	r.notify(target) // the active version was demoted even without a fallback
	return Version{}, fmt.Errorf("%w: no known-good version for %s", ErrNoDeployment, target)
}

// History returns the full version history for target, oldest first.
func (r *Registry) History(target Target) []Version {
	r.mu.RLock()
	defer r.mu.RUnlock()
	hist := r.targets[target]
	out := make([]Version, len(hist))
	for i, v := range hist {
		out[i] = *v
	}
	return out
}

// Targets lists every deployment slot, sorted.
func (r *Registry) Targets() []Target {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Target, 0, len(r.targets))
	for t := range r.targets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
