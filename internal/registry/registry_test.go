package registry

import (
	"errors"
	"testing"
	"time"

	"seagull/internal/simclock"
)

// fixedClock is a simulated clock that self-advances an hour per Now call,
// so successive deployments get distinct, deterministic timestamps.
func fixedClock() simclock.Clock {
	return &steppingClock{Simulated: simclock.NewSimulated(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))}
}

type steppingClock struct{ *simclock.Simulated }

func (c *steppingClock) Now() time.Time {
	c.Advance(time.Hour)
	return c.Simulated.Now()
}

var target = Target{Scenario: "backup", Region: "westus"}

func TestDeployAndActive(t *testing.T) {
	r := New(fixedClock())
	if _, err := r.Active(target); !errors.Is(err, ErrNoDeployment) {
		t.Errorf("empty registry Active err = %v", err)
	}
	v1 := r.Deploy(target, "pf-prev-day", "week 1")
	if v1 != 1 {
		t.Errorf("first version = %d", v1)
	}
	active, err := r.Active(target)
	if err != nil || active.ModelName != "pf-prev-day" || active.Status != StatusActive {
		t.Errorf("active = %+v err %v", active, err)
	}
	if active.Accuracy >= 0 {
		t.Error("fresh deployment must be unevaluated (negative accuracy)")
	}

	v2 := r.Deploy(target, "nimbus-ssa", "week 2")
	if v2 != 2 {
		t.Errorf("second version = %d", v2)
	}
	hist := r.History(target)
	if len(hist) != 2 || hist[0].Status != StatusRetired || hist[1].Status != StatusActive {
		t.Errorf("history = %+v", hist)
	}
}

func TestRecordAccuracy(t *testing.T) {
	r := New(fixedClock())
	v := r.Deploy(target, "pf-prev-day", "")
	if err := r.RecordAccuracy(target, v, 0.99); err != nil {
		t.Fatal(err)
	}
	active, _ := r.Active(target)
	if active.Accuracy != 0.99 {
		t.Errorf("accuracy = %v", active.Accuracy)
	}
	if err := r.RecordAccuracy(target, 99, 0.5); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}
	if err := r.RecordAccuracy(target, 0, 0.5); !errors.Is(err, ErrBadVersion) {
		t.Errorf("zero version err = %v", err)
	}
}

func TestFallbackToKnownGood(t *testing.T) {
	r := New(fixedClock())
	v1 := r.Deploy(target, "pf-prev-day", "good old model")
	if err := r.RecordAccuracy(target, v1, 0.97); err != nil {
		t.Fatal(err)
	}
	v2 := r.Deploy(target, "gluon-ffnn", "regressing model")
	if err := r.RecordAccuracy(target, v2, 0.40); err != nil {
		t.Fatal(err)
	}

	back, err := r.Fallback(target, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if back.Number != v1 || back.ModelName != "pf-prev-day" {
		t.Errorf("fell back to %+v", back)
	}
	active, err := r.Active(target)
	if err != nil || active.Number != v1 {
		t.Errorf("active after fallback = %+v err %v", active, err)
	}
	hist := r.History(target)
	if hist[v2-1].Status != StatusRolledBack {
		t.Errorf("v2 status = %v", hist[v2-1].Status)
	}
}

func TestFallbackNoKnownGood(t *testing.T) {
	r := New(fixedClock())
	v1 := r.Deploy(target, "a", "")
	_ = r.RecordAccuracy(target, v1, 0.2)
	r.Deploy(target, "b", "")
	if _, err := r.Fallback(target, 0.9); !errors.Is(err, ErrNoDeployment) {
		t.Errorf("err = %v", err)
	}
	// The bad active version stays demoted — nothing is serving.
	if _, err := r.Active(target); !errors.Is(err, ErrNoDeployment) {
		t.Errorf("Active after failed fallback err = %v", err)
	}
}

func TestFallbackWithoutActive(t *testing.T) {
	r := New(fixedClock())
	if _, err := r.Fallback(target, 0.5); !errors.Is(err, ErrNoDeployment) {
		t.Errorf("err = %v", err)
	}
}

func TestFallbackSkipsUnevaluated(t *testing.T) {
	r := New(fixedClock())
	r.Deploy(target, "a", "") // never evaluated: accuracy -1
	r.Deploy(target, "b", "")
	if _, err := r.Fallback(target, 0.0); err == nil {
		t.Error("unevaluated versions must not be fallback targets")
	}
}

func TestTargetsSorted(t *testing.T) {
	r := New(fixedClock())
	r.Deploy(Target{Scenario: "backup", Region: "z"}, "m", "")
	r.Deploy(Target{Scenario: "autoscale", Region: "a"}, "m", "")
	ts := r.Targets()
	if len(ts) != 2 || ts[0].Scenario != "autoscale" {
		t.Errorf("Targets = %v", ts)
	}
}

func TestHistoryIsCopy(t *testing.T) {
	r := New(fixedClock())
	r.Deploy(target, "m", "")
	h := r.History(target)
	h[0].ModelName = "mutated"
	if fresh := r.History(target); fresh[0].ModelName != "m" {
		t.Error("History must return copies")
	}
}

func TestDeployTimestampsAdvance(t *testing.T) {
	r := New(fixedClock())
	r.Deploy(target, "a", "")
	r.Deploy(target, "b", "")
	h := r.History(target)
	if !h[1].Deployed.After(h[0].Deployed) {
		t.Error("deployment times should advance")
	}
}

func TestWatchNotifiesOnDeploy(t *testing.T) {
	r := New(nil)
	var events []Target
	r.Watch(func(tg Target) { events = append(events, tg) })
	tg := Target{Scenario: "backup", Region: "w"}
	r.Deploy(tg, "m1", "")
	r.Deploy(tg, "m2", "")
	if len(events) != 2 || events[0] != tg || events[1] != tg {
		t.Fatalf("events = %v", events)
	}
}

func TestWatchNotifiesOnFallback(t *testing.T) {
	r := New(nil)
	tg := Target{Scenario: "backup", Region: "w"}
	v1 := r.Deploy(tg, "m1", "")
	if err := r.RecordAccuracy(tg, v1, 0.9); err != nil {
		t.Fatal(err)
	}
	r.Deploy(tg, "m2", "")
	var events int
	r.Watch(func(Target) { events++ })
	if _, err := r.Fallback(tg, 0.8); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Fatalf("events = %d, want 1", events)
	}
	// A fallback without a known-good version still demotes the active
	// version, so watchers must still fire.
	events = 0
	tg2 := Target{Scenario: "backup", Region: "x"}
	r.Deploy(tg2, "m1", "")
	events = 0
	if _, err := r.Fallback(tg2, 0.99); err == nil {
		t.Fatal("expected no known-good fallback")
	}
	if events != 1 {
		t.Fatalf("events = %d, want 1 (demotion without fallback)", events)
	}
}

func TestWatchMayReenterRegistry(t *testing.T) {
	r := New(nil)
	tg := Target{Scenario: "backup", Region: "w"}
	var seen []int
	r.Watch(func(tg Target) {
		// Watchers run outside the lock, so reading back is legal.
		if v, err := r.Active(tg); err == nil {
			seen = append(seen, v.Number)
		}
	})
	r.Deploy(tg, "m1", "")
	r.Deploy(tg, "m2", "")
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("seen = %v", seen)
	}
}
