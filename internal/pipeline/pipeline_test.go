package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/forecast"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/registry"
	"seagull/internal/simulate"
)

// fixture builds a small fleet, extracts all weeks into a lake, and returns
// a ready pipeline.
func fixture(t *testing.T, servers int) (*Pipeline, *simulate.Fleet) {
	t.Helper()
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "testreg", Servers: servers, Weeks: 4, Seed: 21,
	})
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		t.Fatal(err)
	}
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	p := New(store, db, registry.New(nil), insights.New(nil))
	return p, fleet
}

func TestRunWeekEndToEnd(t *testing.T) {
	p, _ := fixture(t, 60)
	res, err := p.RunWeek(context.Background(), Config{Region: "testreg", Week: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers == 0 || res.Rows == 0 {
		t.Fatalf("no data processed: %+v", res)
	}
	if res.Predicted == 0 || res.Evaluated == 0 {
		t.Fatalf("no predictions: %+v", res)
	}
	if res.Version != 1 {
		t.Errorf("version = %d", res.Version)
	}
	// All six stages must report timings.
	stages := map[string]bool{}
	for _, st := range res.StageTimings {
		stages[st.Stage] = true
	}
	for _, want := range []string{StageIngestion, StageValidation, StageFeatures,
		StageDeployment, StageTrainInfer, StageAccuracy} {
		if !stages[want] {
			t.Errorf("missing stage timing %q", want)
		}
	}
	// Persistent forecast on the paper-mix fleet chooses LL windows well.
	if res.Summary.PctCorrect < 0.85 {
		t.Errorf("LL correct = %.3f, want ≥ 0.85", res.Summary.PctCorrect)
	}
	// Week 1 cannot have predictable servers yet (needs 3 weeks of history).
	if res.Summary.PredictableCount != 0 {
		t.Errorf("predictable after week 1 = %d, want 0", res.Summary.PredictableCount)
	}
	// Documents persisted.
	if n := p.DB.Collection("predictions").Count("testreg"); n != res.Predicted {
		t.Errorf("stored predictions = %d, want %d", n, res.Predicted)
	}
	if n := p.DB.Collection("evaluations").Count("testreg"); n != res.Evaluated {
		t.Errorf("stored evaluations = %d, want %d", n, res.Evaluated)
	}
	var sum SummaryDoc
	if err := p.DB.Collection("summaries").Get("testreg", "week-0001", &sum); err != nil {
		t.Errorf("summary doc: %v", err)
	}
	// Dashboard recorded the run.
	runs := p.Dash.Runs()
	if len(runs) != 1 || !runs[0].Succeeded {
		t.Errorf("dashboard runs = %+v", runs)
	}
}

func TestRunScheduleBuildsPredictability(t *testing.T) {
	p, _ := fixture(t, 80)
	results := p.RunSchedule(context.Background(), Config{}, []string{"testreg"}, []int{0, 1, 2, 3})
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	// Weeks 0 and 1 cannot satisfy the three-week gate of Definition 9.
	for i, r := range results[:2] {
		if r.Summary.PredictableCount != 0 {
			t.Errorf("week %d predictable = %d, want 0", i, r.Summary.PredictableCount)
		}
	}
	// By week 3 the stable majority has three good weeks behind it.
	w3 := results[3]
	if w3.Summary.PctPredictable < 0.5 {
		t.Errorf("week 3 predictable = %.3f, want ≥ 0.5", w3.Summary.PctPredictable)
	}
	// Registry tracked four versions with recorded accuracy.
	hist := p.Registry.History(registry.Target{Scenario: Scenario, Region: "testreg"})
	if len(hist) != 4 {
		t.Fatalf("registry history = %d", len(hist))
	}
	for _, v := range hist {
		if v.Accuracy < 0 {
			t.Errorf("version %d accuracy unrecorded", v.Number)
		}
	}
	active, err := p.Registry.Active(registry.Target{Scenario: Scenario, Region: "testreg"})
	if err != nil || active.Number != 4 {
		t.Errorf("active = %+v err %v", active, err)
	}
}

func TestRunWeekMissingExtract(t *testing.T) {
	p, _ := fixture(t, 10)
	_, err := p.RunWeek(context.Background(), Config{Region: "ghost", Week: 0})
	if err == nil {
		t.Fatal("missing region should fail")
	}
	// The failure raised an incident and recorded a failed run.
	if incs := p.Dash.Incidents(); len(incs) == 0 {
		t.Error("no incident raised")
	}
	runs := p.Dash.Runs()
	if len(runs) != 1 || runs[0].Succeeded {
		t.Errorf("failed run not recorded: %+v", runs)
	}
}

func TestRunWeekUnknownModel(t *testing.T) {
	p, _ := fixture(t, 15)
	res, err := p.RunWeek(context.Background(), Config{Region: "testreg", Week: 1, ModelName: "bogus"})
	// The run completes (each server is skipped) but predicts nothing and
	// raises incidents.
	if err != nil {
		t.Fatalf("unexpected hard failure: %v", err)
	}
	if res.Predicted != 0 {
		t.Errorf("predicted = %d with bogus model", res.Predicted)
	}
	if len(p.Dash.Incidents()) == 0 {
		t.Error("no incidents for unknown model")
	}
}

func TestFallbackOnRegression(t *testing.T) {
	// A fleet of unstable, pattern-free servers: persistent forecast chooses
	// only ~2/3 of LL windows correctly here (deterministic given the seed),
	// well under a 0.9 production bar.
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "testreg", Servers: 60, Weeks: 4, Seed: 33,
		Mix: simulate.Mix{NoPattern: 1},
	})
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		t.Fatal(err)
	}
	db, _ := cosmos.Open("")
	p := New(store, db, registry.New(nil), insights.New(nil))

	// A previously deployed version is on record as known-good.
	target := registry.Target{Scenario: Scenario, Region: "testreg"}
	v1 := p.Registry.Deploy(target, forecast.NameSSA, "known good")
	if err := p.Registry.RecordAccuracy(target, v1, 0.99); err != nil {
		t.Fatal(err)
	}

	res, err := p.RunWeek(context.Background(), Config{
		Region: "testreg", Week: 2,
		MinFleetAccuracy: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.PctCorrect >= 0.9 {
		t.Fatalf("fixture regression broke: accuracy %.3f", res.Summary.PctCorrect)
	}
	if !res.FellBack {
		t.Error("expected fallback to the known-good version")
	}
	active, err := p.Registry.Active(target)
	if err != nil {
		t.Fatal(err)
	}
	if active.Number != v1 || active.ModelName != forecast.NameSSA {
		t.Errorf("active after fallback = %+v", active)
	}
	// The regression raised a warning incident.
	if len(p.Dash.Incidents()) == 0 {
		t.Error("no incident for the regression")
	}
}

func TestWorkersProduceSameResults(t *testing.T) {
	p1, _ := fixture(t, 40)
	p2, _ := fixture(t, 40)
	r1, err := p1.RunWeek(context.Background(), Config{Region: "testreg", Week: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := p2.RunWeek(context.Background(), Config{Region: "testreg", Week: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Predicted != r8.Predicted || r1.Evaluated != r8.Evaluated {
		t.Errorf("parallelism changed results: %d/%d vs %d/%d",
			r1.Predicted, r1.Evaluated, r8.Predicted, r8.Evaluated)
	}
	if r1.Summary.PctCorrect != r8.Summary.PctCorrect {
		t.Errorf("accuracy differs: %v vs %v", r1.Summary.PctCorrect, r8.Summary.PctCorrect)
	}
}

func TestPredictionDocSeries(t *testing.T) {
	d := PredictionDoc{
		BackupDay:   time.Date(2019, 12, 5, 0, 0, 0, 0, time.UTC),
		IntervalMin: 5,
		Values:      []float64{1, 2, 3},
	}
	s := d.Series()
	if s.Len() != 3 || s.Interval != 5*time.Minute || !s.Start.Equal(d.BackupDay) {
		t.Errorf("series = %+v", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ModelName != forecast.NamePersistentPrevDay {
		t.Errorf("default model = %q", c.ModelName)
	}
	if c.Interval != 5*time.Minute || c.HistoryWeeks != 3 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestErrNoData(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Write an empty (header-only) extract.
	w, err := store.Writer(extract.Dataset, "empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(lake.Header + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	db, _ := cosmos.Open("")
	p := New(store, db, registry.New(nil), nil)
	_, err = p.RunWeek(context.Background(), Config{Region: "empty", Week: 0})
	if !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}
