package pipeline

import (
	"context"
	"os"
	"strings"
	"testing"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/registry"
	"seagull/internal/simulate"
)

// Failure injection: the incident-management behaviors of Section 2.2
// ("examples of incidents include missing or invalid input data, errors or
// exceptions in any step of the pipeline").

// TestCorruptExtractRaisesIncident truncates a row mid-file: ingestion must
// fail the run and the dashboard must carry the incident.
func TestCorruptExtractRaisesIncident(t *testing.T) {
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "corrupt", Servers: 10, Weeks: 1, Seed: 2,
	})
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		t.Fatal(err)
	}
	// Corrupt the object: clip the last row in half.
	path := store.Path(extract.Dataset, "corrupt", 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	clipped := data[:len(data)-20]
	clipped = append(clipped, []byte("garbage,row\n")...)
	if err := os.WriteFile(path, clipped, 0o644); err != nil {
		t.Fatal(err)
	}

	db, _ := cosmos.Open("")
	p := New(store, db, registry.New(nil), insights.New(nil))
	_, err = p.RunWeek(context.Background(), Config{Region: "corrupt", Week: 0})
	if err == nil {
		t.Fatal("corrupt extract should fail the run")
	}
	incs := p.Dash.Incidents()
	if len(incs) == 0 {
		t.Fatal("no incident raised")
	}
	found := false
	for _, inc := range incs {
		if inc.Stage == StageIngestion && strings.Contains(inc.Message, "garbage") ||
			strings.Contains(inc.Message, "fields") {
			found = true
		}
	}
	if !found {
		t.Errorf("incidents carry no parse context: %+v", incs)
	}
	// The failed run is on the dashboard with its error.
	runs := p.Dash.Runs()
	if len(runs) != 1 || runs[0].Succeeded || runs[0].Error == "" {
		t.Errorf("failed run record = %+v", runs)
	}
}

// TestOutOfBoundTelemetryFlagsAnomalies plants impossible CPU readings: the
// run continues (the data is structurally parseable) but validation flags
// bound anomalies and a warning incident fires.
func TestOutOfBoundTelemetryFlagsAnomalies(t *testing.T) {
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "bounds", Servers: 8, Weeks: 1, Seed: 3,
	})
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		t.Fatal(err)
	}
	path := store.Path(extract.Dataset, "bounds", 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Replace one healthy reading with an impossible 250.000 load.
	txt := string(data)
	lines := strings.SplitN(txt, "\n", 3)
	parts := strings.Split(lines[1], ",")
	parts[2] = "250.000"
	lines[1] = strings.Join(parts, ",")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	db, _ := cosmos.Open("")
	p := New(store, db, registry.New(nil), insights.New(nil))
	res, err := p.RunWeek(context.Background(), Config{Region: "bounds", Week: 0})
	if err != nil {
		t.Fatalf("bound anomaly must not kill the run: %v", err)
	}
	if res.Validation == nil || res.Validation.Valid {
		t.Error("validation should be flagged invalid")
	}
	warned := false
	for _, inc := range p.Dash.Incidents() {
		if inc.Severity == insights.SevWarning && inc.Stage == StageValidation {
			warned = true
		}
	}
	if !warned {
		t.Error("no validation warning raised")
	}
}

// TestMultiRegionIsolation runs two regions against one shared system and
// checks results stay partitioned.
func TestMultiRegionIsolation(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, region := range []string{"iso-a", "iso-b"} {
		fleet := simulate.GenerateFleet(simulate.Config{
			Region: region, Servers: 15 + 10*i, Weeks: 2, Seed: int64(4 + i),
		})
		if _, err := extract.ExtractAll(store, fleet); err != nil {
			t.Fatal(err)
		}
	}
	db, _ := cosmos.Open("")
	p := New(store, db, registry.New(nil), insights.New(nil))
	ra, err := p.RunWeek(context.Background(), Config{Region: "iso-a", Week: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := p.RunWeek(context.Background(), Config{Region: "iso-b", Week: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Collection("predictions").Count("iso-a"); got != ra.Predicted {
		t.Errorf("iso-a predictions = %d, want %d", got, ra.Predicted)
	}
	if got := db.Collection("predictions").Count("iso-b"); got != rb.Predicted {
		t.Errorf("iso-b predictions = %d, want %d", got, rb.Predicted)
	}
	// Each region has its own registry slot.
	if _, err := p.Registry.Active(registry.Target{Scenario: Scenario, Region: "iso-a"}); err != nil {
		t.Errorf("iso-a deployment: %v", err)
	}
	if _, err := p.Registry.Active(registry.Target{Scenario: Scenario, Region: "iso-b"}); err != nil {
		t.Errorf("iso-b deployment: %v", err)
	}
}
