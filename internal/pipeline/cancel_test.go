package pipeline

import (
	"context"
	"errors"
	"testing"
)

func TestRunWeekCancelledBeforeStart(t *testing.T) {
	p, _ := fixture(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.RunWeek(ctx, Config{Region: "testreg", Week: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The failed run must be recorded on the dashboard like any other
	// failure, so operators see abandoned runs.
	sum := p.Dash.Summarize()
	if sum.Failed != 1 {
		t.Errorf("dashboard failed runs = %d, want 1", sum.Failed)
	}
}

func TestRunScheduleStopsOnCancel(t *testing.T) {
	p, _ := fixture(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := p.RunSchedule(ctx, Config{}, []string{"testreg"}, []int{0, 1, 2})
	if len(out) != 0 {
		t.Fatalf("cancelled schedule produced %d results", len(out))
	}
}
