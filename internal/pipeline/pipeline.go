// Package pipeline is the AML-pipeline analog (Section 2.2): the use-case-
// agnostic core of Seagull. A weekly run per region ingests the load extract
// from the lake, validates it, extracts features, trains the configured
// model per server, deploys/tracks the model version, infers next-day load
// for every server due for backup, evaluates prediction accuracy against the
// actuals that arrived since the previous run, stores results in the Cosmos
// DB analog, and reports stage timings and incidents to the dashboard.
//
// Concurrency: a Pipeline is safe for concurrent runs over distinct
// (region, week) pairs — runs share the substrates but write disjoint
// documents (failure_test.go pins the isolation). Cancelling a run's ctx
// abandons it at the next stage boundary or server partition and records it
// as failed. Equivalence: RunWeek is deterministic per (config, stored
// extract) — the stream layer's refresh path is pinned bit-identical to it,
// and the Cron replays are pinned against operator-triggered runs.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"seagull/internal/classify"
	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/forecast"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/registry"
	"seagull/internal/simclock"
	"seagull/internal/timeseries"
	"seagull/internal/validate"
)

// Scenario is the deployment scenario name for backup scheduling.
const Scenario = "backup"

// Stage names reported in run telemetry; these are the components of
// Figure 12(a).
const (
	StageIngestion  = "ingestion"
	StageValidation = "validation"
	StageFeatures   = "feature-extraction"
	StageTrainInfer = "train-infer"
	StageDeployment = "model-deployment"
	StageAccuracy   = "accuracy-evaluation"
)

// ErrNoData is returned when a run has no usable input.
var ErrNoData = errors.New("pipeline: no input data")

// Config parameterizes one weekly pipeline run (the "parameter updates" of
// Section 2.4).
type Config struct {
	Region string
	// Week is the 0-based week (relative to the dataset start) whose extract
	// this run processes; the run happens at the end of that week.
	Week int
	// ModelName selects the forecasting model to train/deploy; defaults to
	// persistent forecast on the previous day — the production choice.
	ModelName string
	// Interval is the telemetry granularity; defaults to 5 minutes.
	Interval time.Duration
	// HistoryWeeks is how many prior weeks are ingested for training and
	// predictability; defaults to the metrics config's 3.
	HistoryWeeks int
	// Workers bounds the parallel accuracy evaluation; 0 means NumCPU, 1
	// forces the single-threaded baseline.
	Workers int
	// Metrics carries the accuracy constants (Definitions 1–9).
	Metrics metrics.Config
	// Seed drives stochastic models.
	Seed int64
	// MinFleetAccuracy is the LL-window accuracy below which the run demotes
	// the deployed model and falls back to the last known-good version.
	// Zero disables fallback.
	MinFleetAccuracy float64
}

func (c Config) withDefaults() Config {
	if c.ModelName == "" {
		c.ModelName = forecast.NamePersistentPrevDay
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Metrics == (metrics.Config{}) {
		c.Metrics = metrics.DefaultConfig()
	}
	if c.HistoryWeeks == 0 {
		c.HistoryWeeks = c.Metrics.HistoryWeeks
	}
	return c
}

// PredictionDoc is the per-server output stored in the predictions
// collection: the predicted load for the server's backup day.
type PredictionDoc struct {
	ServerID     string    `json:"server_id"`
	Region       string    `json:"region"`
	Week         int       `json:"week"`
	Model        string    `json:"model"`
	BackupDay    time.Time `json:"backup_day"` // midnight of the predicted day
	WindowPoints int       `json:"window_points"`
	IntervalMin  int       `json:"interval_min"`
	// DefaultStart is the server's current activity-agnostic backup window
	// start; the scheduler falls back to it for unpredictable servers.
	DefaultStart time.Time `json:"default_start"`
	Values       []float64 `json:"values"`
	// LLStart is the start index of the predicted lowest-load window.
	LLStart int `json:"ll_start"`
	// LLAvg is the predicted average load inside that window.
	LLAvg float64 `json:"ll_avg"`
	// Refreshes counts how many times the stream layer re-derived this
	// prediction from live telemetry since the weekly run stored it.
	Refreshes int `json:"refreshes,omitempty"`
}

// Series reconstructs the predicted day as a series.
func (p *PredictionDoc) Series() timeseries.Series {
	return timeseries.New(p.BackupDay, time.Duration(p.IntervalMin)*time.Minute, p.Values)
}

// EvalDoc is the per-server accuracy record stored in the evaluations
// collection (one per server per week).
type EvalDoc struct {
	ServerID       string  `json:"server_id"`
	Week           int     `json:"week"`
	WindowCorrect  bool    `json:"window_correct"`
	WindowAccurate bool    `json:"window_accurate"`
	WindowRatio    float64 `json:"window_ratio"`
	TrueLLStart    int     `json:"true_ll_start"`
	PredLLStart    int     `json:"pred_ll_start"`
	TrueLLAvg      float64 `json:"true_ll_avg"`
	PredWindowTrue float64 `json:"pred_window_true_avg"`
	// Predictable is the Definition 9 verdict using history up to this week.
	Predictable bool `json:"predictable"`
}

// SummaryDoc is the per-region weekly fleet summary.
type SummaryDoc struct {
	Region          string  `json:"region"`
	Week            int     `json:"week"`
	Servers         int     `json:"servers"`
	PctCorrect      float64 `json:"pct_ll_correct"`
	PctAccurate     float64 `json:"pct_ll_accurate"`
	PctPredictable  float64 `json:"pct_predictable"`
	MeanBucketRatio float64 `json:"mean_bucket_ratio"`
	Model           string  `json:"model"`
	Version         int     `json:"version"`
}

// Result is the outcome of one weekly run.
type Result struct {
	Region       string
	Week         int
	Rows         int
	Servers      int
	Predicted    int
	Evaluated    int
	Summary      metrics.FleetSummary
	Classes      *classify.Summary
	Validation   *validate.Report
	Version      int
	FellBack     bool
	StageTimings []insights.StageTiming
	Total        time.Duration
}

// Pipeline wires the use-case-agnostic components together.
type Pipeline struct {
	Store    *lake.Store
	DB       *cosmos.DB
	Registry *registry.Registry
	Dash     *insights.Dashboard
	// Clock stamps run records with (possibly simulated) time; stage timings
	// always use the wall clock — they measure real work.
	Clock simclock.Clock
}

// New returns a pipeline over the given substrates. dash may be nil (a
// fresh dashboard is created).
func New(store *lake.Store, db *cosmos.DB, reg *registry.Registry, dash *insights.Dashboard) *Pipeline {
	if dash == nil {
		dash = insights.New(nil)
	}
	return &Pipeline{Store: store, DB: db, Registry: reg, Dash: dash, Clock: simclock.Wall}
}

// RunWeek executes the full weekly pipeline for one region. Cancelling ctx
// abandons the run at the next stage boundary (and, inside training and
// inference, at the next server partition); the dashboard records the run as
// failed with the context's error.
func (p *Pipeline) RunWeek(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Region: cfg.Region, Week: cfg.Week}
	runStart := time.Now()
	record := func(stage string, d time.Duration) {
		res.StageTimings = append(res.StageTimings, insights.StageTiming{Stage: stage, Duration: d})
	}
	fail := func(stage string, err error) (*Result, error) {
		p.Dash.Raise(insights.SevError, cfg.Region, stage, "%v", err)
		res.Total = time.Since(runStart)
		p.Dash.RecordRun(insights.RunRecord{
			Region: cfg.Region, Week: cfg.Week, StartedAt: p.Clock.Now(),
			Total: res.Total, Stages: res.StageTimings,
			Rows: res.Rows, Servers: res.Servers, Succeeded: false, Error: err.Error(),
		})
		return res, fmt.Errorf("pipeline %s week %d: %s: %w", cfg.Region, cfg.Week, stage, err)
	}

	if err := ctx.Err(); err != nil {
		return fail(StageIngestion, err)
	}

	// --- Ingestion: current week plus trailing history weeks. ---
	t := time.Now()
	histories, weekLoads, err := p.ingest(cfg)
	record(StageIngestion, time.Since(t))
	if err != nil {
		return fail(StageIngestion, err)
	}
	res.Servers = len(weekLoads)
	for _, sl := range weekLoads {
		res.Rows += sl.Load.Len()
	}

	// --- Validation: raw extract re-scan plus ingested-series checks. ---
	if err := ctx.Err(); err != nil {
		return fail(StageValidation, err)
	}
	t = time.Now()
	rep, err := p.validateWeek(cfg, weekLoads)
	record(StageValidation, time.Since(t))
	if err != nil {
		return fail(StageValidation, err)
	}
	res.Validation = rep
	if !rep.Valid {
		p.Dash.Raise(insights.SevWarning, cfg.Region, StageValidation,
			"%d anomalies in week %d extract", len(rep.Anomalies), cfg.Week)
	}

	// --- Feature extraction / classification. ---
	t = time.Now()
	res.Classes = p.extractFeatures(cfg, histories)
	record(StageFeatures, time.Since(t))

	// --- Model deployment & tracking. ---
	t = time.Now()
	version := p.Registry.Deploy(registry.Target{Scenario: Scenario, Region: cfg.Region},
		cfg.ModelName, fmt.Sprintf("week %d", cfg.Week))
	res.Version = version
	record(StageDeployment, time.Since(t))

	// --- Training & inference: predict each server's backup day. ---
	if err := ctx.Err(); err != nil {
		return fail(StageTrainInfer, err)
	}
	t = time.Now()
	preds, evals, err := p.trainInferEvaluate(ctx, cfg, histories)
	record(StageTrainInfer, time.Since(t))
	if err != nil {
		return fail(StageTrainInfer, err)
	}
	res.Predicted = len(preds)

	// --- Accuracy evaluation & persistence. ---
	if err := ctx.Err(); err != nil {
		return fail(StageAccuracy, err)
	}
	t = time.Now()
	summary, err := p.persistResults(cfg, version, preds, evals)
	record(StageAccuracy, time.Since(t))
	if err != nil {
		return fail(StageAccuracy, err)
	}
	res.Evaluated = len(evals)
	res.Summary = summary

	// Known-good fallback when fleet accuracy regresses (Section 2.2).
	if cfg.MinFleetAccuracy > 0 && summary.Servers > 0 && summary.PctCorrect < cfg.MinFleetAccuracy {
		if back, err := p.Registry.Fallback(registry.Target{Scenario: Scenario, Region: cfg.Region}, cfg.MinFleetAccuracy); err == nil {
			res.FellBack = true
			p.Dash.Raise(insights.SevWarning, cfg.Region, StageAccuracy,
				"accuracy %.3f below %.3f; fell back to %s v%d",
				summary.PctCorrect, cfg.MinFleetAccuracy, back.ModelName, back.Number)
		} else {
			p.Dash.Raise(insights.SevCritical, cfg.Region, StageAccuracy,
				"accuracy %.3f below %.3f and no known-good fallback: %v",
				summary.PctCorrect, cfg.MinFleetAccuracy, err)
		}
	}

	res.Total = time.Since(runStart)
	p.Dash.RecordRun(insights.RunRecord{
		Region: cfg.Region, Week: cfg.Week, StartedAt: p.Clock.Now(),
		Total: res.Total, Stages: res.StageTimings,
		Rows: res.Rows, Servers: res.Servers, Succeeded: true,
	})
	return res, nil
}

// serverHistory is a server's concatenated load across the ingested weeks.
type serverHistory struct {
	id           string
	load         timeseries.Series
	backupStart  time.Time
	backupEnd    time.Time
	windowPoints int
}

// ingest loads the current week plus up to HistoryWeeks prior weeks and
// concatenates them per server. It returns the per-server histories and the
// current week's loads (for validation).
func (p *Pipeline) ingest(cfg Config) (map[string]*serverHistory, []*extract.ServerLoad, error) {
	firstWeek := cfg.Week - cfg.HistoryWeeks
	if firstWeek < 0 {
		firstWeek = 0
	}
	histories := map[string]*serverHistory{}
	var weekLoads []*extract.ServerLoad
	for w := firstWeek; w <= cfg.Week; w++ {
		loads, err := extract.Ingest(p.Store, cfg.Region, w, cfg.Interval)
		if err != nil {
			if errors.Is(err, lake.ErrNotFound) && w != cfg.Week {
				continue // older weeks may predate the dataset
			}
			return nil, nil, err
		}
		if w == cfg.Week {
			weekLoads = loads
		}
		for _, sl := range loads {
			h := histories[sl.ServerID]
			if h == nil {
				h = &serverHistory{id: sl.ServerID, load: sl.Load}
				histories[sl.ServerID] = h
			} else {
				// Append, bridging any gap between weeks with missing points.
				gap := int(sl.Load.Start.Sub(h.load.End()) / cfg.Interval)
				for g := 0; g < gap; g++ {
					h.load.Append(timeseries.Missing)
				}
				h.load.Append(sl.Load.Values...)
			}
			h.backupStart, h.backupEnd = sl.BackupStart, sl.BackupEnd
			h.windowPoints = sl.WindowPoints()
		}
	}
	if len(weekLoads) == 0 {
		return nil, nil, ErrNoData
	}
	return histories, weekLoads, nil
}

// validateWeek re-scans the raw extract against the schema and checks the
// ingested series.
func (p *Pipeline) validateWeek(cfg Config, weekLoads []*extract.ServerLoad) (*validate.Report, error) {
	rd, err := p.Store.Reader(extract.Dataset, cfg.Region, cfg.Week)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	schema := validate.DefaultSchema()
	rowRep, err := validate.ValidateRows(rd, schema)
	if err != nil {
		return nil, err
	}
	weekPoints := int(7 * 24 * time.Hour / cfg.Interval)
	loadRep := validate.ValidateLoads(weekLoads, schema, weekPoints)
	rowRep.Anomalies = append(rowRep.Anomalies, loadRep.Anomalies...)
	rowRep.Valid = rowRep.Valid && loadRep.Valid
	return rowRep, nil
}

// extractFeatures classifies every server on its concatenated history.
func (p *Pipeline) extractFeatures(cfg Config, histories map[string]*serverHistory) *classify.Summary {
	sum := classify.NewSummary()
	for _, h := range histories {
		cat, err := classify.Categorize(h.load, h.load.NumDays(), cfg.Metrics)
		if err != nil {
			p.Dash.Raise(insights.SevWarning, cfg.Region, StageFeatures, "%s: %v", h.id, err)
			continue
		}
		sum.Add(cat)
	}
	return sum
}

// trainInferEvaluate predicts each server's backup day within the processed
// week using the week of history immediately preceding it, and evaluates the
// prediction against the actuals (which are available because the run
// happens at the end of the week). Servers are processed in parallel
// partitions, Dask-style.
func (p *Pipeline) trainInferEvaluate(ctx context.Context, cfg Config, histories map[string]*serverHistory) ([]*PredictionDoc, []*EvalDoc, error) {
	ids := make([]string, 0, len(histories))
	for id := range histories {
		ids = append(ids, id)
	}
	pool := parallel.NewPool(cfg.Workers)
	type outcome struct {
		pred *PredictionDoc
		eval *EvalDoc
	}
	outs := make([]outcome, len(ids))
	err := pool.ForEachCtx(ctx, len(ids), func(i int) error {
		h := histories[ids[i]]
		pd, ed := p.predictServer(cfg, h)
		outs[i] = outcome{pred: pd, eval: ed}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var preds []*PredictionDoc
	var evals []*EvalDoc
	for _, o := range outs {
		if o.pred != nil {
			preds = append(preds, o.pred)
		}
		if o.eval != nil {
			evals = append(evals, o.eval)
		}
	}
	return preds, evals, nil
}

// predictServer runs train→infer→evaluate for one server. Servers whose
// history cannot support the model (too young, no backup day in week) are
// skipped — they default to the activity-agnostic backup window.
func (p *Pipeline) predictServer(cfg Config, h *serverHistory) (*PredictionDoc, *EvalDoc) {
	ppd := h.load.PointsPerDay()
	backupMidnight := h.backupStart.Truncate(24 * time.Hour)
	dayIdx, ok := h.load.IndexOf(backupMidnight)
	if !ok || dayIdx%ppd != 0 {
		// Align to the containing day.
		if !ok {
			return nil, nil
		}
		dayIdx -= dayIdx % ppd
	}
	if dayIdx+ppd > h.load.Len() {
		return nil, nil // backup day not fully covered by telemetry
	}
	trainPoints := 7 * ppd
	if dayIdx < trainPoints {
		trainPoints = dayIdx - dayIdx%ppd // use whole days available
	}
	if trainPoints < 3*ppd {
		return nil, nil // under three days of history (Section 5.3.1)
	}
	history, err := h.load.Slice(dayIdx-trainPoints, dayIdx)
	if err != nil {
		return nil, nil
	}
	model, err := forecast.New(cfg.ModelName, cfg.Seed)
	if err != nil {
		p.Dash.Raise(insights.SevError, cfg.Region, StageTrainInfer, "model %q: %v", cfg.ModelName, err)
		return nil, nil
	}
	pred, err := forecast.PredictDay(model, history)
	if err != nil {
		return nil, nil
	}
	w := h.windowPoints
	if w < 1 {
		w = 1
	}
	if w > ppd {
		w = ppd
	}
	llw, err := metrics.LowestLoadWindow(pred, w)
	if err != nil {
		return nil, nil
	}
	pdoc := &PredictionDoc{
		ServerID:     h.id,
		Region:       cfg.Region,
		Week:         cfg.Week,
		Model:        cfg.ModelName,
		BackupDay:    h.load.TimeAt(dayIdx),
		WindowPoints: w,
		IntervalMin:  int(h.load.Interval / time.Minute),
		DefaultStart: h.backupStart,
		Values:       pred.Values,
		LLStart:      llw.Start,
		LLAvg:        llw.AvgLoad,
	}

	// Evaluate against actuals (run happens after the week completed).
	trueDay, err := h.load.Slice(dayIdx, dayIdx+ppd)
	if err != nil {
		return pdoc, nil
	}
	dr, err := metrics.EvaluateDay(trueDay.FillGaps(), pred, w, cfg.Metrics)
	if err != nil {
		return pdoc, nil
	}
	edoc := &EvalDoc{
		ServerID:       h.id,
		Week:           cfg.Week,
		WindowCorrect:  dr.Window.Correct,
		WindowAccurate: dr.WindowAccurate,
		WindowRatio:    dr.WindowRatio,
		TrueLLStart:    dr.Window.True.Start,
		PredLLStart:    dr.Window.Predicted.Start,
		TrueLLAvg:      dr.Window.True.AvgLoad,
		PredWindowTrue: dr.Window.TrueLoadInPredicted,
	}
	return pdoc, edoc
}

// persistResults stores predictions and evaluations in Cosmos, computes the
// Definition 9 predictability per server from the trailing weeks, and
// records the fleet summary.
func (p *Pipeline) persistResults(cfg Config, version int, preds []*PredictionDoc, evals []*EvalDoc) (metrics.FleetSummary, error) {
	var summary metrics.FleetSummary
	predCol := p.DB.Collection("predictions")
	evalCol := p.DB.Collection("evaluations")
	sumCol := p.DB.Collection("summaries")

	for _, pd := range preds {
		if err := predCol.Upsert(cfg.Region, docID(pd.ServerID, pd.Week), pd); err != nil {
			return summary, err
		}
	}
	for _, ed := range evals {
		// Definition 9: predictable when the trailing HistoryWeeks (including
		// this one) were all correct and accurate.
		predictable := ed.WindowCorrect && ed.WindowAccurate
		weeksSeen := 1
		for w := ed.Week - 1; w > ed.Week-cfg.Metrics.HistoryWeeks && predictable; w-- {
			var prev EvalDoc
			if err := evalCol.Get(cfg.Region, docID(ed.ServerID, w), &prev); err != nil {
				predictable = false
				break
			}
			weeksSeen++
			predictable = prev.WindowCorrect && prev.WindowAccurate
		}
		if weeksSeen < cfg.Metrics.HistoryWeeks {
			predictable = false
		}
		ed.Predictable = predictable
		if err := evalCol.Upsert(cfg.Region, docID(ed.ServerID, ed.Week), ed); err != nil {
			return summary, err
		}
		summary.Add(metrics.DayResult{
			Window: metrics.WindowResult{
				Correct: ed.WindowCorrect,
				True:    metrics.Window{Start: ed.TrueLLStart, AvgLoad: ed.TrueLLAvg},
				Predicted: metrics.Window{
					Start: ed.PredLLStart,
				},
				TrueLoadInPredicted: ed.PredWindowTrue,
			},
			WindowAccurate: ed.WindowAccurate,
			WindowRatio:    ed.WindowRatio,
		}, predictable)
	}

	target := registry.Target{Scenario: Scenario, Region: cfg.Region}
	if summary.Servers > 0 {
		if err := p.Registry.RecordAccuracy(target, version, summary.PctCorrect); err != nil {
			return summary, err
		}
	}
	doc := SummaryDoc{
		Region: cfg.Region, Week: cfg.Week,
		Servers:         summary.Servers,
		PctCorrect:      summary.PctCorrect,
		PctAccurate:     summary.PctAccurate,
		PctPredictable:  summary.PctPredictable,
		MeanBucketRatio: summary.MeanBucketRatio,
		Model:           cfg.ModelName,
		Version:         version,
	}
	if err := sumCol.Upsert(cfg.Region, fmt.Sprintf("week-%04d", cfg.Week), doc); err != nil {
		return summary, err
	}
	return summary, nil
}

func docID(serverID string, week int) string {
	return fmt.Sprintf("%s/week-%04d", serverID, week)
}

// RunSchedule executes weekly runs for several regions and weeks in
// sequence, as the recurring Pipeline Scheduler does in production. Failed
// runs raise incidents but do not stop the schedule; cancelling ctx does.
func (p *Pipeline) RunSchedule(ctx context.Context, base Config, regions []string, weeks []int) []*Result {
	var out []*Result
	for _, region := range regions {
		for _, week := range weeks {
			if ctx.Err() != nil {
				return out
			}
			cfg := base
			cfg.Region = region
			cfg.Week = week
			res, err := p.RunWeek(ctx, cfg)
			if err != nil {
				// RunWeek already raised the incident; keep the partial result.
				out = append(out, res)
				continue
			}
			out = append(out, res)
		}
	}
	return out
}
