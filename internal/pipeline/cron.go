package pipeline

import (
	"context"
	"errors"
	"sync"
	"time"

	"seagull/internal/simclock"
)

// The Pipeline Scheduler of Section 2.2: "a run of the AML pipeline is
// scheduled once a week per region since servers are due for full backup at
// least once a week". Cron drives RunWeek from a clock — the real one in
// production, an accelerated fake in tests and simulations.

// ErrCronStopped is returned by Wait when the cron was stopped before
// completing its planned runs.
var ErrCronStopped = errors.New("pipeline: cron stopped")

// CronConfig parameterizes the recurring schedule.
type CronConfig struct {
	// Regions to process each tick.
	Regions []string
	// Start is the dataset epoch: week N covers [Start+N·week, Start+(N+1)·week).
	Start time.Time
	// FirstWeek and LastWeek bound the schedule (inclusive).
	FirstWeek, LastWeek int
	// Base is the pipeline configuration template; Region/Week are filled in
	// per run.
	Base Config
	// Clock paces the schedule; nil means the wall clock. Simulations inject
	// a simclock.Simulated (typically with AutoAdvanceSleeps) to compress
	// weeks into microseconds.
	Clock simclock.Clock
}

// Cron runs the weekly schedule. Each week's runs trigger once that week has
// fully elapsed (the run needs the week's complete telemetry).
type Cron struct {
	p      *Pipeline
	cfg    CronConfig
	ctx    context.Context // cancelled by Stop to interrupt clock sleeps
	cancel context.CancelFunc

	mu      sync.Mutex
	stopped bool
	results []*Result
	errs    []error
	done    chan struct{}
}

// NewCron returns a cron over the pipeline. It does not start it.
func NewCron(p *Pipeline, cfg CronConfig) *Cron {
	cfg.Clock = simclock.Or(cfg.Clock)
	ctx, cancel := context.WithCancel(context.Background())
	return &Cron{p: p, cfg: cfg, ctx: ctx, cancel: cancel, done: make(chan struct{})}
}

// Start launches the schedule in a goroutine and returns immediately.
func (c *Cron) Start() {
	go c.loop()
}

// loop waits for each week boundary and fires the regional runs.
func (c *Cron) loop() {
	defer close(c.done)
	const week = 7 * 24 * time.Hour
	for w := c.cfg.FirstWeek; w <= c.cfg.LastWeek; w++ {
		boundary := c.cfg.Start.Add(time.Duration(w+1) * week)
		for {
			if c.isStopped() {
				return
			}
			now := c.cfg.Clock.Now()
			if !now.Before(boundary) {
				break
			}
			wait := boundary.Sub(now)
			if wait > time.Second {
				wait = time.Second // re-check stop flag periodically
			}
			// A cancelled sleep (Stop) falls through to the stop check above.
			_ = c.cfg.Clock.Sleep(c.ctx, wait)
		}
		for _, region := range c.cfg.Regions {
			if c.isStopped() {
				return
			}
			cfg := c.cfg.Base
			cfg.Region = region
			cfg.Week = w
			res, err := c.p.RunWeek(context.Background(), cfg)
			c.mu.Lock()
			c.results = append(c.results, res)
			if err != nil {
				c.errs = append(c.errs, err)
			}
			c.mu.Unlock()
		}
	}
}

func (c *Cron) isStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// Stop aborts the schedule, waking any in-progress clock wait; in-flight
// runs complete.
func (c *Cron) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	c.cancel()
}

// Wait blocks until the schedule completes (or is stopped) and returns all
// results plus the first error, ErrCronStopped if stopped early.
func (c *Cron) Wait() ([]*Result, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.results, c.errs[0]
	}
	wantRuns := (c.cfg.LastWeek - c.cfg.FirstWeek + 1) * len(c.cfg.Regions)
	if c.stopped && len(c.results) < wantRuns {
		return c.results, ErrCronStopped
	}
	return c.results, nil
}

// Results returns a snapshot of the completed runs.
func (c *Cron) Results() []*Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Result(nil), c.results...)
}
