package pipeline

import (
	"errors"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/registry"
	"seagull/internal/simclock"
	"seagull/internal/simulate"
)

func cronFixture(t *testing.T) (*Pipeline, time.Time) {
	t.Helper()
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "cron", Servers: 25, Weeks: 3, Seed: 8,
	})
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		t.Fatal(err)
	}
	db, _ := cosmos.Open("")
	p := New(store, db, registry.New(nil), insights.New(nil))
	return p, fleet.Config.Start
}

func TestCronRunsEveryWeekPerRegion(t *testing.T) {
	p, start := cronFixture(t)
	clock := simclock.NewSimulated(start)
	clock.AutoAdvanceSleeps() // the cron's own sleeps drive the clock
	c := NewCron(p, CronConfig{
		Regions:   []string{"cron"},
		Start:     start,
		FirstWeek: 0, LastWeek: 2,
		Clock: clock,
	})
	c.Start()
	results, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("runs = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.Week != i || r.Region != "cron" {
			t.Errorf("run %d = week %d region %s", i, r.Week, r.Region)
		}
	}
	// The simulated clock must have advanced past the final week boundary.
	if clock.Now().Before(start.Add(3 * 7 * 24 * time.Hour)) {
		t.Errorf("clock ended at %v", clock.Now())
	}
}

func TestCronStop(t *testing.T) {
	p, start := cronFixture(t)
	// Non-auto clock: the cron parks in Sleep waiting for week 0's boundary,
	// and Stop must wake it without anyone advancing the clock.
	clock := simclock.NewSimulated(start)
	c := NewCron(p, CronConfig{
		Regions:   []string{"cron"},
		Start:     start,
		FirstWeek: 0, LastWeek: 2,
		Clock: clock,
	})
	c.Start()
	clock.BlockUntil(1) // cron is parked in its first boundary wait
	c.Stop()
	results, err := c.Wait()
	if !errors.Is(err, ErrCronStopped) {
		t.Fatalf("err = %v, want ErrCronStopped (results %d)", err, len(results))
	}
}

func TestCronMissingRegionPropagatesError(t *testing.T) {
	p, start := cronFixture(t)
	clock := simclock.NewSimulated(start)
	clock.AutoAdvanceSleeps()
	c := NewCron(p, CronConfig{
		Regions:   []string{"ghost"},
		Start:     start,
		FirstWeek: 0, LastWeek: 0,
		Clock: clock,
	})
	c.Start()
	_, err := c.Wait()
	if err == nil {
		t.Fatal("missing region should surface from Wait")
	}
	// The failed run still appears in the results snapshot.
	if len(c.Results()) != 1 {
		t.Errorf("results = %d", len(c.Results()))
	}
}
