package scheduler

import (
	"errors"
	"fmt"

	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/timeseries"
)

// This file implements the two scheduler extensions the paper commits to:
//
//   - Section 6.2: "We also use the lowest load window metric to measure if
//     backup windows selected by customers correspond to predictable lowest
//     load windows and suggest windows with expected lower load instead."
//     → AdviseWindow.
//
//   - Section 6.1: "To further optimize backup scheduling, we will move a
//     backup of a server from its default backup day to other day of the
//     week if the load is lower and/or prediction is more accurate on
//     another day." → BestBackupDay.

// ErrNoForecast is returned when a forecast cannot be produced.
var ErrNoForecast = errors.New("scheduler: no forecast available")

// Advice is the outcome of reviewing a customer-selected backup window.
type Advice struct {
	// KeepCurrent is true when the customer's window is already within the
	// acceptable bound of the predicted lowest-load window.
	KeepCurrent bool
	// SuggestedStart is the predicted LL window start index within the day
	// (meaningful when !KeepCurrent).
	SuggestedStart int
	// CurrentAvg and SuggestedAvg are the predicted average loads of the
	// customer's window and the suggested window.
	CurrentAvg   float64
	SuggestedAvg float64
}

// AdviseWindow reviews a customer-selected backup window (start index within
// the predicted day, w observations long) against the predicted lowest-load
// window. A suggestion is produced only when the customer window's predicted
// load is outside the acceptable bound of the predicted optimum — the same
// "not significantly better" tolerance of Definition 8.
func AdviseWindow(predictedDay timeseries.Series, customerStart, w int, cfg metrics.Config) (Advice, error) {
	ll, err := metrics.LowestLoadWindow(predictedDay, w)
	if err != nil {
		return Advice{}, err
	}
	customerStart = clampWindowStart(customerStart, w, predictedDay.Len())
	cur, err := predictedDay.WindowMean(customerStart, w)
	if err != nil {
		return Advice{}, err
	}
	adv := Advice{
		SuggestedStart: ll.Start,
		CurrentAvg:     cur,
		SuggestedAvg:   ll.AvgLoad,
	}
	adv.KeepCurrent = cfg.WindowBound.Contains(ll.AvgLoad, cur)
	return adv, nil
}

// DayChoice is one candidate backup day in the cross-day optimization.
type DayChoice struct {
	DayOffset int // days ahead of the history end (0 = first forecast day)
	Window    metrics.Window
	// Ratio is the backtest bucket ratio of the model on this weekday over
	// the training history (a proxy for "prediction is more accurate on
	// another day").
	Ratio float64
}

// BestBackupDay implements the Section 6.1 extension: forecast the whole
// next week, find each day's LL window, and choose the day whose window has
// the lowest predicted load among days the model predicts accurately. The
// model must already implement Model semantics; history must cover at least
// cfg-required days plus one week for backtesting.
func BestBackupDay(m forecast.Model, history timeseries.Series, w int, cfg metrics.Config) (DayChoice, []DayChoice, error) {
	ppd := history.PointsPerDay()
	if ppd == 0 {
		return DayChoice{}, nil, timeseries.ErrBadInterval
	}
	if err := m.Train(history); err != nil {
		return DayChoice{}, nil, fmt.Errorf("%w: %v", ErrNoForecast, err)
	}
	week, err := m.Forecast(7 * ppd)
	if err != nil {
		return DayChoice{}, nil, fmt.Errorf("%w: %v", ErrNoForecast, err)
	}

	// Backtest: how accurate was the same model one week earlier, per
	// weekday? Compare the trailing week of history against its prediction
	// from the week before.
	ratios := backtestWeek(m, history, cfg)

	choices := make([]DayChoice, 0, 7)
	for d := 0; d < 7; d++ {
		day, err := week.Slice(d*ppd, (d+1)*ppd)
		if err != nil {
			return DayChoice{}, nil, err
		}
		ll, err := metrics.LowestLoadWindow(day, w)
		if err != nil {
			return DayChoice{}, nil, err
		}
		choices = append(choices, DayChoice{DayOffset: d, Window: ll, Ratio: ratios[d]})
	}

	best := choices[0]
	for _, c := range choices[1:] {
		accurate := c.Ratio >= cfg.AccuracyThreshold
		bestAccurate := best.Ratio >= cfg.AccuracyThreshold
		switch {
		case accurate && !bestAccurate:
			best = c
		case accurate == bestAccurate && c.Window.AvgLoad < best.Window.AvgLoad:
			best = c
		}
	}
	return best, choices, nil
}

// backtestWeek predicts the final week of history from the data before it
// and returns the per-weekday bucket ratio (index 0 = first day of the
// forecast week). Days that cannot be backtested get ratio 1 so they are not
// unfairly penalized.
func backtestWeek(m forecast.Model, history timeseries.Series, cfg metrics.Config) [7]float64 {
	var ratios [7]float64
	for i := range ratios {
		ratios[i] = 1
	}
	ppd := history.PointsPerDay()
	if history.NumDays() < 8 {
		return ratios
	}
	cut := history.Len() - 7*ppd
	train, err := history.Slice(0, cut)
	if err != nil {
		return ratios
	}
	if err := m.Train(train); err != nil {
		return ratios
	}
	pred, err := m.Forecast(7 * ppd)
	if err != nil {
		return ratios
	}
	for d := 0; d < 7; d++ {
		trueDay, err1 := history.Slice(cut+d*ppd, cut+(d+1)*ppd)
		predDay, err2 := pred.Slice(d*ppd, (d+1)*ppd)
		if err1 != nil || err2 != nil {
			continue
		}
		if r, err := metrics.BucketRatio(trueDay.FillGaps(), predDay, cfg.Bound); err == nil {
			ratios[d] = r
		}
	}
	return ratios
}
