// Package scheduler implements the use-case-specific online components of
// Section 2.3: the backup scheduling algorithm that, for every server due
// for a full backup, verifies the server was predictable for the last three
// weeks (Definition 9), selects the predicted lowest-load window, and stores
// its start time as a service-fabric property consumed by the backup
// service. Servers that were not predictable keep their default,
// activity-agnostic backup window.
//
// The package also contains the impact accounting behind Figure 13(a):
// how many backups moved into correctly chosen LL windows, how many default
// windows already were LL windows, and how many collisions with peak
// customer activity were avoided for busy servers.
//
// Concurrency: the Scheduler and FabricStore are safe for concurrent use;
// ScheduleWeek observes its ctx between servers. Equivalence: scheduling is
// a pure function of the stored predictions and evaluation history, so
// re-running a week over unchanged documents reproduces identical
// decisions.
package scheduler

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/metrics"
	"seagull/internal/pipeline"
	"seagull/internal/simclock"
	"seagull/internal/timeseries"
)

// Source says who chose a backup window.
type Source string

// Window sources.
const (
	SourcePredicted Source = "predicted" // LL window from the deployed model
	SourceDefault   Source = "default"   // activity-agnostic default window
)

// Property is the service-fabric property the backup service reads: the
// chosen backup window start for one server.
type Property struct {
	ServerID string    `json:"server_id"`
	Start    time.Time `json:"start"`
	Source   Source    `json:"source"`
	// SetAt is when the scheduler wrote the property.
	SetAt time.Time `json:"set_at"`
}

// FabricStore is the service-fabric property store analog. Safe for
// concurrent use.
type FabricStore struct {
	mu    sync.RWMutex
	props map[string]Property
}

// NewFabricStore returns an empty property store.
func NewFabricStore() *FabricStore {
	return &FabricStore{props: map[string]Property{}}
}

// Set writes the property for a server.
func (f *FabricStore) Set(p Property) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.props[p.ServerID] = p
}

// Get returns the property for a server.
func (f *FabricStore) Get(serverID string) (Property, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p, ok := f.props[serverID]
	return p, ok
}

// Len returns the number of stored properties.
func (f *FabricStore) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.props)
}

// Decision is one scheduling outcome.
type Decision struct {
	ServerID     string
	Week         int
	BackupDay    time.Time // midnight of the backup day
	WindowPoints int
	IntervalMin  int
	Start        time.Time // chosen window start
	Source       Source
	DefaultStart time.Time // the pre-existing default window start
	PredLLStart  int       // index of the predicted LL window within the day
}

// Scheduler decides backup windows from the pipeline's stored predictions
// and predictability verdicts. It is the "MDS runner" deployable of the
// paper, reduced to its decision logic.
type Scheduler struct {
	DB      *cosmos.DB
	Fabric  *FabricStore
	Metrics metrics.Config
	// Clock stamps fabric properties; nil means wall clock.
	Clock simclock.Clock
}

// New returns a scheduler over the given document store and property store.
func New(db *cosmos.DB, fabric *FabricStore, cfg metrics.Config) *Scheduler {
	return &Scheduler{DB: db, Fabric: fabric, Metrics: cfg, Clock: simclock.Wall}
}

// ScheduleWeek chooses backup windows for every server with a stored
// prediction for `week` in `region`. A server gets its predicted LL window
// only when its Definition 9 verdict from the *previous* week's evaluation
// is positive — "we verify that the servers were predictable for several
// weeks and we do not reschedule a backup at a worse time based on
// predictions we are not confident in" (Section 2.3). All other servers
// keep their default window. Cancelling ctx stops the sweep at the next
// server; decisions already written to the fabric store stay in place (each
// is individually complete).
func (s *Scheduler) ScheduleWeek(ctx context.Context, region string, week int) ([]Decision, error) {
	predCol := s.DB.Collection("predictions")
	evalCol := s.DB.Collection("evaluations")
	var decisions []Decision
	err := predCol.Query(region, func(id string, body json.RawMessage) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var pd pipeline.PredictionDoc
		if err := json.Unmarshal(body, &pd); err != nil {
			return fmt.Errorf("scheduler: decode prediction %s: %w", id, err)
		}
		if pd.Week != week {
			return nil
		}
		d := Decision{
			ServerID:     pd.ServerID,
			Week:         week,
			BackupDay:    pd.BackupDay,
			WindowPoints: pd.WindowPoints,
			IntervalMin:  pd.IntervalMin,
			DefaultStart: pd.DefaultStart,
			PredLLStart:  pd.LLStart,
			Source:       SourceDefault,
			Start:        pd.DefaultStart,
		}
		// Predictability as of the previous completed week.
		var prev pipeline.EvalDoc
		if err := evalCol.Get(region, fmt.Sprintf("%s/week-%04d", pd.ServerID, week-1), &prev); err == nil && prev.Predictable {
			d.Source = SourcePredicted
			d.Start = pd.BackupDay.Add(time.Duration(pd.LLStart*pd.IntervalMin) * time.Minute)
		}
		decisions = append(decisions, d)
		s.Fabric.Set(Property{
			ServerID: d.ServerID,
			Start:    d.Start,
			Source:   d.Source,
			SetAt:    s.Clock.Now(),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return decisions, nil
}

// Impact aggregates the Figure 13(a) accounting for a set of decisions.
type Impact struct {
	Decisions int // total scheduling decisions
	Scheduled int // decisions that used a predicted LL window
	Defaulted int // decisions that kept the default window

	// The three mutually exclusive buckets over scheduled servers:
	DefaultWasLL    int // default window already was an LL window
	Moved           int // moved into a correctly chosen LL window
	IncorrectWindow int // chosen LL window was not chosen correctly

	// Busy-server accounting (peak load above BusyThreshold):
	BusyServers      int
	CollisionAvoided int // default collided with peak activity, chosen window doesn't

	// ImprovedMinutes approximates the hours of improved customer experience:
	// backup minutes moved out of windows whose true load significantly
	// exceeded the optimum.
	ImprovedMinutes int
}

// PctDefaultWasLL returns the share of scheduled servers whose default was
// already an LL window (85.3% in the paper).
func (im Impact) PctDefaultWasLL() float64 { return pct(im.DefaultWasLL, im.Scheduled) }

// PctMoved returns the share of scheduled servers whose backup moved into a
// correctly chosen LL window (12.5% in the paper).
func (im Impact) PctMoved() float64 { return pct(im.Moved, im.Scheduled) }

// PctIncorrect returns the share of scheduled servers whose window was not
// chosen correctly (2.1% in the paper).
func (im Impact) PctIncorrect() float64 { return pct(im.IncorrectWindow, im.Scheduled) }

// PctCollisionsAvoided returns the share of busy servers whose backup no
// longer collides with peak activity (7.7% in the paper).
func (im Impact) PctCollisionsAvoided() float64 { return pct(im.CollisionAvoided, im.BusyServers) }

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// BusyThreshold is the busy-server cut of Figure 13(a): customer load over
// 60% of capacity.
const BusyThreshold = 60.0

// TrueDayFunc supplies the actual load of a server on its backup day; ok is
// false when actuals are unavailable (the server is skipped).
type TrueDayFunc func(serverID string, day time.Time) (timeseries.Series, bool)

// EvaluateImpact classifies every decision against the actual backup-day
// load, reproducing Figure 13(a)'s buckets.
func EvaluateImpact(decisions []Decision, trueDay TrueDayFunc, cfg metrics.Config) (Impact, error) {
	var im Impact
	for _, d := range decisions {
		actual, ok := trueDay(d.ServerID, d.BackupDay)
		if !ok {
			continue
		}
		im.Decisions++
		ppd := actual.PointsPerDay()
		w := d.WindowPoints
		if w < 1 || w > ppd {
			w = min(max(w, 1), ppd)
		}
		trueLL, err := metrics.LowestLoadWindow(actual, w)
		if err != nil {
			return im, fmt.Errorf("scheduler: impact for %s: %w", d.ServerID, err)
		}
		defaultIdx := clampWindowStart(offsetInDay(d.DefaultStart, d.BackupDay, actual.Interval), w, ppd)
		defaultAvg, err := actual.WindowMean(defaultIdx, w)
		if err != nil {
			return im, err
		}
		maxLoad, _ := actual.Max()
		busy := maxLoad > BusyThreshold
		if busy {
			im.BusyServers++
		}

		if d.Source == SourceDefault {
			im.Defaulted++
			continue
		}
		im.Scheduled++
		chosenIdx := clampWindowStart(offsetInDay(d.Start, d.BackupDay, actual.Interval), w, ppd)
		chosenAvg, err := actual.WindowMean(chosenIdx, w)
		if err != nil {
			return im, err
		}
		switch {
		case cfg.WindowBound.Contains(trueLL.AvgLoad, defaultAvg):
			// The default slot was already (within bound) a lowest-load
			// window; scheduling confirms it by chance.
			im.DefaultWasLL++
		case cfg.WindowBound.Contains(trueLL.AvgLoad, chosenAvg):
			im.Moved++
			im.ImprovedMinutes += w * int(actual.Interval/time.Minute)
		default:
			im.IncorrectWindow++
		}
		if busy && defaultAvg > BusyThreshold && cfg.WindowBound.Contains(trueLL.AvgLoad, chosenAvg) {
			im.CollisionAvoided++
		}
	}
	return im, nil
}

// offsetInDay converts an absolute window start into an observation index
// within the backup day.
func offsetInDay(start, dayMidnight time.Time, interval time.Duration) int {
	off := start.Sub(dayMidnight)
	if off < 0 {
		off = 0
	}
	return int(off / interval)
}

// clampWindowStart keeps a window of w observations inside a day of ppd
// observations (default windows near midnight would otherwise overflow).
func clampWindowStart(idx, w, ppd int) int {
	if idx+w > ppd {
		idx = ppd - w
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}
