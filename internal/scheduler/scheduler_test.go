package scheduler

import (
	"context"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/metrics"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

// fixture runs the pipeline over four weeks and returns a scheduler plus the
// fleet for impact evaluation.
func fixture(t *testing.T, servers int) (*Scheduler, *simulate.Fleet, *pipeline.Pipeline) {
	t.Helper()
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "sched", Servers: servers, Weeks: 4, Seed: 33,
	})
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		t.Fatal(err)
	}
	db, _ := cosmos.Open("")
	p := pipeline.New(store, db, registry.New(nil), insights.New(nil))
	for week := 0; week < 4; week++ {
		if _, err := p.RunWeek(context.Background(), pipeline.Config{Region: "sched", Week: week}); err != nil {
			t.Fatal(err)
		}
	}
	s := New(db, NewFabricStore(), metrics.DefaultConfig())
	return s, fleet, p
}

func trueDayFunc(fleet *simulate.Fleet) TrueDayFunc {
	byID := map[string]*simulate.Server{}
	for _, srv := range fleet.Servers {
		byID[srv.ID] = srv
	}
	return func(serverID string, day time.Time) (timeseries.Series, bool) {
		srv := byID[serverID]
		if srv == nil {
			return timeseries.Series{}, false
		}
		idx, ok := srv.Load().IndexOf(day)
		if !ok {
			return timeseries.Series{}, false
		}
		ppd := srv.Load().PointsPerDay()
		if idx+ppd > srv.Load().Len() {
			return timeseries.Series{}, false
		}
		sub, err := srv.Load().Slice(idx, idx+ppd)
		if err != nil {
			return timeseries.Series{}, false
		}
		return sub.FillGaps(), true
	}
}

func TestScheduleWeekDecisions(t *testing.T) {
	s, _, _ := fixture(t, 70)
	decisions, err := s.ScheduleWeek(context.Background(), "sched", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) == 0 {
		t.Fatal("no decisions")
	}
	predicted, defaulted := 0, 0
	for _, d := range decisions {
		switch d.Source {
		case SourcePredicted:
			predicted++
			// The chosen window must lie within the backup day.
			off := d.Start.Sub(d.BackupDay)
			if off < 0 || off >= 24*time.Hour {
				t.Errorf("%s window start %v outside backup day", d.ServerID, d.Start)
			}
		case SourceDefault:
			defaulted++
			if !d.Start.Equal(d.DefaultStart) {
				t.Errorf("%s defaulted but start %v != default %v", d.ServerID, d.Start, d.DefaultStart)
			}
		}
		// Every decision must have a fabric property.
		prop, ok := s.Fabric.Get(d.ServerID)
		if !ok {
			t.Fatalf("no fabric property for %s", d.ServerID)
		}
		if !prop.Start.Equal(d.Start) || prop.Source != Source(d.Source) {
			t.Errorf("property mismatch for %s: %+v vs %+v", d.ServerID, prop, d)
		}
	}
	// After three good weeks the stable majority is predictable.
	if predicted == 0 {
		t.Error("no servers scheduled by prediction")
	}
	t.Logf("decisions: %d predicted, %d defaulted", predicted, defaulted)
}

func TestScheduleEarlyWeekAllDefault(t *testing.T) {
	s, _, _ := fixture(t, 40)
	// Week 0 has no prior evaluation → everything defaults.
	decisions, err := s.ScheduleWeek(context.Background(), "sched", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decisions {
		if d.Source != SourceDefault {
			t.Errorf("%s scheduled in week 0", d.ServerID)
		}
	}
}

func TestEvaluateImpactShape(t *testing.T) {
	s, fleet, _ := fixture(t, 120)
	decisions, err := s.ScheduleWeek(context.Background(), "sched", 3)
	if err != nil {
		t.Fatal(err)
	}
	im, err := EvaluateImpact(decisions, trueDayFunc(fleet), metrics.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if im.Decisions == 0 || im.Scheduled == 0 {
		t.Fatalf("impact = %+v", im)
	}
	// The three buckets partition the scheduled servers.
	if im.DefaultWasLL+im.Moved+im.IncorrectWindow != im.Scheduled {
		t.Errorf("buckets %d+%d+%d != scheduled %d",
			im.DefaultWasLL, im.Moved, im.IncorrectWindow, im.Scheduled)
	}
	// Paper shape: most defaults already sit in LL windows; incorrect
	// windows are rare.
	if im.PctDefaultWasLL() < 0.5 {
		t.Errorf("default-was-LL = %.3f, expected the majority", im.PctDefaultWasLL())
	}
	if im.PctIncorrect() > 0.15 {
		t.Errorf("incorrect = %.3f, expected rare", im.PctIncorrect())
	}
	t.Logf("impact: defaultLL=%.1f%% moved=%.1f%% incorrect=%.1f%% collisionsAvoided=%.1f%% improvedMin=%d",
		100*im.PctDefaultWasLL(), 100*im.PctMoved(), 100*im.PctIncorrect(),
		100*im.PctCollisionsAvoided(), im.ImprovedMinutes)
}

func TestEvaluateImpactMissingActuals(t *testing.T) {
	s, _, _ := fixture(t, 30)
	decisions, err := s.ScheduleWeek(context.Background(), "sched", 3)
	if err != nil {
		t.Fatal(err)
	}
	im, err := EvaluateImpact(decisions,
		func(string, time.Time) (timeseries.Series, bool) { return timeseries.Series{}, false },
		metrics.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if im.Decisions != 0 {
		t.Errorf("decisions counted without actuals: %+v", im)
	}
}

func TestFabricStore(t *testing.T) {
	f := NewFabricStore()
	if _, ok := f.Get("x"); ok {
		t.Error("empty store Get should miss")
	}
	p := Property{ServerID: "x", Start: time.Now(), Source: SourcePredicted}
	f.Set(p)
	got, ok := f.Get("x")
	if !ok || got.ServerID != "x" || got.Source != SourcePredicted {
		t.Errorf("got %+v ok=%v", got, ok)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d", f.Len())
	}
	// Overwrite.
	p.Source = SourceDefault
	f.Set(p)
	got, _ = f.Get("x")
	if got.Source != SourceDefault {
		t.Error("Set should overwrite")
	}
}

func TestClampWindowStart(t *testing.T) {
	cases := []struct{ idx, w, ppd, want int }{
		{0, 10, 288, 0},
		{285, 10, 288, 278}, // clamped to fit
		{-3, 10, 288, 0},
		{100, 10, 288, 100},
	}
	for _, c := range cases {
		if got := clampWindowStart(c.idx, c.w, c.ppd); got != c.want {
			t.Errorf("clamp(%d,%d,%d) = %d, want %d", c.idx, c.w, c.ppd, got, c.want)
		}
	}
}

func TestOffsetInDay(t *testing.T) {
	day := time.Date(2019, 12, 5, 0, 0, 0, 0, time.UTC)
	if got := offsetInDay(day.Add(90*time.Minute), day, 5*time.Minute); got != 18 {
		t.Errorf("offset = %d, want 18", got)
	}
	if got := offsetInDay(day.Add(-time.Hour), day, 5*time.Minute); got != 0 {
		t.Errorf("negative offset = %d, want 0", got)
	}
}
