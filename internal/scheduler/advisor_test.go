package scheduler

import (
	"math/rand"
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/timeseries"
)

var at0 = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

// mkWeekdayLoad builds n days at 5-minute granularity where each day's load
// is base plus a per-weekday bump amplitude.
func mkWeekdayLoad(days int, amp [7]float64, rng *rand.Rand) timeseries.Series {
	const ppd = 288
	vals := make([]float64, days*ppd)
	for d := 0; d < days; d++ {
		for s := 0; s < ppd; s++ {
			v := 8.0
			if s >= 96 && s < 192 {
				v += amp[d%7]
			}
			if rng != nil {
				v += rng.NormFloat64() * 0.5
			}
			vals[d*ppd+s] = v
		}
	}
	return timeseries.New(at0, 5*time.Minute, vals)
}

func TestAdviseWindowKeep(t *testing.T) {
	cfg := metrics.DefaultConfig()
	// Flat predicted day: any customer window is as good as the optimum.
	day := timeseries.New(at0, 5*time.Minute, make([]float64, 288))
	for i := range day.Values {
		day.Values[i] = 20
	}
	adv, err := AdviseWindow(day, 100, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !adv.KeepCurrent {
		t.Errorf("flat day: advice = %+v, want keep", adv)
	}
}

func TestAdviseWindowSuggest(t *testing.T) {
	cfg := metrics.DefaultConfig()
	// Busy business hours, idle night: a customer window at noon is bad.
	day := mkWeekdayLoad(1, [7]float64{60, 60, 60, 60, 60, 60, 60}, nil)
	adv, err := AdviseWindow(day, 120, 12, cfg) // slot 120 is inside the bump
	if err != nil {
		t.Fatal(err)
	}
	if adv.KeepCurrent {
		t.Fatalf("noon window should be replaced: %+v", adv)
	}
	if adv.SuggestedAvg >= adv.CurrentAvg {
		t.Errorf("suggested window (%.1f) should undercut current (%.1f)",
			adv.SuggestedAvg, adv.CurrentAvg)
	}
	// The suggestion must be outside the bump.
	if adv.SuggestedStart >= 96-12 && adv.SuggestedStart < 192 {
		t.Errorf("suggested start %d lies in the busy band", adv.SuggestedStart)
	}
}

func TestAdviseWindowClampsOverflow(t *testing.T) {
	cfg := metrics.DefaultConfig()
	day := mkWeekdayLoad(1, [7]float64{}, nil)
	// Customer window starts 10 minutes before midnight: must clamp, not error.
	if _, err := AdviseWindow(day, 286, 12, cfg); err != nil {
		t.Fatalf("overflowing window: %v", err)
	}
}

func TestBestBackupDayPrefersQuietDay(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// One weekday class is idle around the clock; the others stay loaded all
	// day (no idle night to hide a backup in). The cross-day optimizer must
	// move the backup onto the idle day.
	const ppd = 288
	base := [7]float64{8, 55, 55, 55, 55, 55, 55}
	vals := make([]float64, 21*ppd)
	for d := 0; d < 21; d++ {
		for s := 0; s < ppd; s++ {
			vals[d*ppd+s] = base[d%7] + rng.NormFloat64()*0.5
		}
	}
	hist := timeseries.New(at0, 5*time.Minute, vals)
	m := forecast.NewPersistent(forecast.PrevEquivalentDay)
	best, choices, err := BestBackupDay(m, hist, 12, metrics.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 7 {
		t.Fatalf("choices = %d", len(choices))
	}
	// The idle weekday class repeats every 7 days; forecast offset 0
	// corresponds to day 21, whose class is 21%7 == 0 — the idle one.
	if best.DayOffset != 0 {
		t.Errorf("best day offset = %d (avg %.1f), want the idle day 0; choices: %+v",
			best.DayOffset, best.Window.AvgLoad, choices)
	}
	if best.Window.AvgLoad > 15 {
		t.Errorf("best window avg %.1f, want idle-level", best.Window.AvgLoad)
	}
}

func TestBestBackupDayAccuracyGate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// All days equally loaded: the choice then keys on backtest accuracy,
	// and no day should be rejected (prev-day predicts flat load well).
	amp := [7]float64{30, 30, 30, 30, 30, 30, 30}
	hist := mkWeekdayLoad(21, amp, rng)
	m := forecast.NewPersistent(forecast.PrevDay)
	best, choices, err := BestBackupDay(m, hist, 12, metrics.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range choices {
		if c.Ratio < 0.9 {
			t.Errorf("day %d backtest ratio %.2f, want ≥ 0.9 on uniform load", c.DayOffset, c.Ratio)
		}
	}
	if best.Ratio < 0.9 {
		t.Errorf("best day ratio %.2f", best.Ratio)
	}
}

func TestBestBackupDayErrors(t *testing.T) {
	cfg := metrics.DefaultConfig()
	m := forecast.NewPersistent(PrevDayVariant())
	short := timeseries.New(at0, 5*time.Minute, make([]float64, 10))
	if _, _, err := BestBackupDay(m, short, 12, cfg); err == nil {
		t.Error("too-short history should error")
	}
	var zero timeseries.Series
	if _, _, err := BestBackupDay(m, zero, 12, cfg); err == nil {
		t.Error("zero series should error")
	}
}

// PrevDayVariant keeps the test readable without importing the variant enum.
func PrevDayVariant() forecast.Variant { return forecast.PrevDay }
