package insights

import (
	"strings"
	"testing"
	"time"
)

func tick() func() time.Time {
	t := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Minute)
		return t
	}
}

func TestRaiseAndHook(t *testing.T) {
	d := New(tick())
	var hooked []Incident
	d.OnIncident(func(i Incident) { hooked = append(hooked, i) })

	d.Raise(SevError, "westus", "validation", "found %d anomalies", 3)
	d.Raise(SevCritical, "eastus", "deployment", "deploy failed")

	incs := d.Incidents()
	if len(incs) != 2 || len(hooked) != 2 {
		t.Fatalf("incidents=%d hooked=%d", len(incs), len(hooked))
	}
	if incs[0].Severity != SevError || incs[0].Message != "found 3 anomalies" {
		t.Errorf("inc[0] = %+v", incs[0])
	}
	if !incs[1].At.After(incs[0].At) {
		t.Error("timestamps should advance")
	}
	if !strings.Contains(incs[0].String(), "westus/validation") {
		t.Errorf("String = %q", incs[0].String())
	}
	// Hook removal.
	d.OnIncident(nil)
	d.Raise(SevWarning, "r", "s", "m")
	if len(hooked) != 2 {
		t.Error("removed hook still fired")
	}
}

func TestRecordRunsAndSummary(t *testing.T) {
	d := New(tick())
	d.RecordRun(RunRecord{
		Region: "westus", Week: 1, Total: 10 * time.Minute, Succeeded: true,
		Stages: []StageTiming{
			{Stage: "ingestion", Duration: 4 * time.Minute},
			{Stage: "validation", Duration: 6 * time.Minute},
		},
	})
	d.RecordRun(RunRecord{
		Region: "eastus", Week: 1, Total: 20 * time.Minute, Succeeded: false, Error: "boom",
		Stages: []StageTiming{
			{Stage: "ingestion", Duration: 8 * time.Minute},
		},
	})
	d.Raise(SevError, "eastus", "pipeline", "boom")

	s := d.Summarize()
	if s.Runs != 2 || s.Succeeded != 1 || s.Failed != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanRuntime != 15*time.Minute {
		t.Errorf("mean runtime = %v", s.MeanRuntime)
	}
	if s.StageMeans["ingestion"] != 6*time.Minute {
		t.Errorf("ingestion mean = %v", s.StageMeans["ingestion"])
	}
	if s.StageMeans["validation"] != 6*time.Minute {
		t.Errorf("validation mean = %v", s.StageMeans["validation"])
	}
	if s.Incidents[SevError] != 1 {
		t.Errorf("incident counts = %v", s.Incidents)
	}
	if len(s.Regions) != 2 || s.Regions[0] != "eastus" {
		t.Errorf("regions = %v", s.Regions)
	}
}

func TestEmptySummary(t *testing.T) {
	d := New(nil)
	s := d.Summarize()
	if s.Runs != 0 || s.MeanRuntime != 0 || len(s.StageMeans) != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestRunsReturnsCopy(t *testing.T) {
	d := New(tick())
	d.RecordRun(RunRecord{Region: "a"})
	runs := d.Runs()
	runs[0].Region = "mutated"
	if d.Runs()[0].Region != "a" {
		t.Error("Runs must return a copy")
	}
}
