// Package insights is the Application Insights analog (Section 2.2): it
// records pipeline run telemetry, aggregates it into the dashboard summary
// the paper's on-call engineers watch, and raises incidents for the
// conditions the paper lists — "missing or invalid input data, errors or
// exceptions in any step of the pipeline, and failed model deployment".
//
// Concurrency: the Dashboard is safe for concurrent use; recorders and
// summarizers may run from pipeline goroutines and HTTP handlers at once.
package insights

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Severity of an incident.
type Severity string

// Incident severities.
const (
	SevWarning  Severity = "warning"
	SevError    Severity = "error"
	SevCritical Severity = "critical"
)

// Incident is one alert raised by the pipeline.
type Incident struct {
	At       time.Time
	Severity Severity
	Region   string
	Stage    string
	Message  string
}

func (i Incident) String() string {
	return fmt.Sprintf("%s [%s] %s/%s: %s",
		i.At.Format(time.RFC3339), i.Severity, i.Region, i.Stage, i.Message)
}

// StageTiming is the recorded duration of one pipeline stage in one run.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// RunRecord is the telemetry of one pipeline run.
type RunRecord struct {
	Region    string
	Week      int
	StartedAt time.Time
	Total     time.Duration
	Stages    []StageTiming
	Rows      int
	Servers   int
	Succeeded bool
	Error     string
}

// Dashboard aggregates run records and incidents. Safe for concurrent use.
type Dashboard struct {
	mu        sync.RWMutex
	runs      []RunRecord
	incidents []Incident
	clock     func() time.Time
	// onIncident, when set, is invoked synchronously for every incident —
	// the hook the paging integration attaches to.
	onIncident func(Incident)
}

// New returns an empty dashboard. clock may be nil for wall time.
func New(clock func() time.Time) *Dashboard {
	if clock == nil {
		clock = time.Now
	}
	return &Dashboard{clock: clock}
}

// OnIncident installs a synchronous incident hook (may be nil to remove).
func (d *Dashboard) OnIncident(fn func(Incident)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onIncident = fn
}

// RecordRun appends one pipeline run record.
func (d *Dashboard) RecordRun(r RunRecord) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.runs = append(d.runs, r)
}

// Raise records an incident and fires the hook.
func (d *Dashboard) Raise(sev Severity, region, stage, format string, args ...any) {
	inc := Incident{
		At:       d.clock(),
		Severity: sev,
		Region:   region,
		Stage:    stage,
		Message:  fmt.Sprintf(format, args...),
	}
	d.mu.Lock()
	d.incidents = append(d.incidents, inc)
	hook := d.onIncident
	d.mu.Unlock()
	if hook != nil {
		hook(inc)
	}
}

// Incidents returns all raised incidents, oldest first.
func (d *Dashboard) Incidents() []Incident {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Incident(nil), d.incidents...)
}

// Runs returns all run records, oldest first.
func (d *Dashboard) Runs() []RunRecord {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]RunRecord(nil), d.runs...)
}

// Summary is the dashboard's aggregated view.
type Summary struct {
	Runs        int
	Succeeded   int
	Failed      int
	Incidents   map[Severity]int
	MeanRuntime time.Duration
	// StageMeans is the average duration per stage across successful runs,
	// the series behind the Figure 12(a)-style component view.
	StageMeans map[string]time.Duration
	Regions    []string
}

// Summarize computes the dashboard aggregates.
func (d *Dashboard) Summarize() Summary {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := Summary{
		Incidents:  map[Severity]int{},
		StageMeans: map[string]time.Duration{},
	}
	regions := map[string]bool{}
	var total time.Duration
	stageTotals := map[string]time.Duration{}
	stageCounts := map[string]int{}
	for _, r := range d.runs {
		s.Runs++
		if r.Succeeded {
			s.Succeeded++
		} else {
			s.Failed++
		}
		total += r.Total
		regions[r.Region] = true
		for _, st := range r.Stages {
			stageTotals[st.Stage] += st.Duration
			stageCounts[st.Stage]++
		}
	}
	for _, inc := range d.incidents {
		s.Incidents[inc.Severity]++
	}
	if s.Runs > 0 {
		s.MeanRuntime = total / time.Duration(s.Runs)
	}
	for stage, tot := range stageTotals {
		s.StageMeans[stage] = tot / time.Duration(stageCounts[stage])
	}
	for r := range regions {
		s.Regions = append(s.Regions, r)
	}
	sort.Strings(s.Regions)
	return s
}
