// Package seagull is the public API of the Seagull reproduction: an
// infrastructure for load prediction and optimized resource allocation
// (Poppe et al., VLDB 2020).
//
// Seagull ingests per-server CPU telemetry, validates it, classifies servers
// by their activity patterns, trains and deploys forecasting models,
// predicts each server's load 24 hours ahead, and uses the predictions to
// schedule full backups inside each server's lowest-load window. The same
// infrastructure powers a second scenario: preemptive auto-scale of SQL
// databases.
//
// The System type wires every substrate together — data lake, document
// store, model registry, dashboard, pipeline and backup scheduler — over a
// data directory (or fully in temporary storage):
//
//	sys, err := seagull.NewSystem(seagull.SystemConfig{})
//	fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: "westus", Servers: 500, Weeks: 4, Seed: 1})
//	sys.LoadFleet(fleet)
//	res, err := sys.RunWeeks("westus", 0, 3, seagull.PipelineConfig{})
//	decisions, err := sys.ScheduleBackups("westus", 3)
//
// See the examples directory for complete programs.
package seagull

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"seagull/internal/autoscale"
	"seagull/internal/classify"
	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/forecast"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/metrics"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/scheduler"
	"seagull/internal/serving"
	"seagull/internal/simulate"
	"seagull/internal/stream"
	"seagull/internal/timeseries"
)

// Re-exported core types. Aliases keep the public API a single import while
// the implementation stays modular.
type (
	// Series is a uniformly sampled load time series.
	Series = timeseries.Series

	// Fleet is a synthetic regional server population with telemetry.
	Fleet = simulate.Fleet
	// FleetConfig parameterizes fleet generation.
	FleetConfig = simulate.Config
	// Mix is a fleet's class composition (Figure 3 shares by default).
	Mix = simulate.Mix
	// Server is one synthetic server.
	Server = simulate.Server
	// Database is one synthetic SQL database (Appendix A).
	Database = simulate.Database
	// SQLConfig parameterizes SQL database generation.
	SQLConfig = simulate.SQLConfig

	// Model is a pluggable per-server load forecaster.
	Model = forecast.Model

	// MetricsConfig carries the accuracy constants of Definitions 1–9.
	MetricsConfig = metrics.Config
	// Bound is an asymmetric acceptable error bound (Definition 1).
	Bound = metrics.Bound
	// DayResult is a backup-day evaluation (Definitions 2 and 8 combined).
	DayResult = metrics.DayResult
	// FleetSummary aggregates backup-day evaluations over a fleet.
	FleetSummary = metrics.FleetSummary

	// PipelineConfig parameterizes a weekly pipeline run.
	PipelineConfig = pipeline.Config
	// PipelineResult is the outcome of one weekly pipeline run.
	PipelineResult = pipeline.Result
	// PredictionDoc is a stored per-server backup-day prediction.
	PredictionDoc = pipeline.PredictionDoc

	// Decision is one backup-window scheduling outcome.
	Decision = scheduler.Decision
	// Impact aggregates scheduling outcomes (Figure 13(a)).
	Impact = scheduler.Impact
	// TrueDayFunc supplies actual backup-day load for impact evaluation.
	TrueDayFunc = scheduler.TrueDayFunc

	// Category is a server class (Figure 3 taxonomy).
	Category = classify.Category
	// ClassSummary is a population breakdown by category.
	ClassSummary = classify.Summary

	// AutoscaleEval is one model's Appendix A evaluation row.
	AutoscaleEval = autoscale.ModelEval
	// AutoscaleConfig parameterizes the Appendix A evaluation.
	AutoscaleConfig = autoscale.EvalConfig

	// Service is the long-lived, concurrency-safe serving layer: the v2
	// prediction protocol over a warm model pool, with v1 compatibility.
	Service = serving.Service
	// ServiceConfig parameterizes the serving layer (request limits,
	// deadlines, warm-pool sizing).
	ServiceConfig = serving.ServiceConfig
	// Client is the typed Go client for the serving endpoints (v1 and v2).
	Client = serving.Client

	// Ingestor is the online telemetry ingestion layer: sharded per-server
	// slot rings accepting out-of-order points, with zero-copy live views.
	Ingestor = stream.Ingestor
	// StreamConfig parameterizes the ingestor (slot interval, epoch,
	// retained window, shard count).
	StreamConfig = stream.Config
	// DriftDetector compares live telemetry against stored predictions.
	DriftDetector = stream.DriftDetector
	// DriftReport is the outcome of one drift sweep.
	DriftReport = stream.Report
	// Refresher retrains drifted servers from live telemetry and
	// republishes their predictions.
	Refresher = stream.Refresher
	// RefreshConfig parameterizes the shared refresher (training window,
	// queue size, drain concurrency).
	RefreshConfig = stream.RefreshConfig
	// Sweeper is the background drift loop: it periodically discovers each
	// region's latest summarized week and sweeps it for drift with zero
	// client involvement.
	Sweeper = stream.Sweeper
	// SweeperConfig parameterizes the background sweeper (tick interval).
	SweeperConfig = stream.SweeperConfig
	// AppendStatus reports what happened to one ingested point.
	AppendStatus = stream.AppendStatus
	// Durability is the bounded-loss persistence manager for the stream
	// layer: a group-committed per-shard WAL plus periodic incremental ring
	// snapshots, replayed on boot so a hard kill loses at most one commit
	// interval of telemetry.
	Durability = stream.Durability
	// DurabilityConfig parameterizes the durability manager (WAL commit
	// interval δ, snapshot cadence, buffer sizing).
	DurabilityConfig = stream.DurabilityConfig
	// RecoveryStats describes one boot-time recovery pass (snapshot shards
	// restored, WAL records replayed, per-file failures).
	RecoveryStats = stream.RecoveryStats
)

// NewClient returns a typed client for a serving endpoint base URL.
func NewClient(baseURL string) *Client { return serving.NewClient(baseURL) }

// Model registry names (Section 5.1's zoo).
const (
	ModelPersistentPrevDay = forecast.NamePersistentPrevDay
	ModelPersistentPrevEq  = forecast.NamePersistentPrevWeek
	ModelPersistentWeekAvg = forecast.NamePersistentWeekAvg
	ModelSSA               = forecast.NameSSA
	ModelFFNN              = forecast.NameFFNN
	ModelAdditive          = forecast.NameAdditive
	ModelARIMA             = forecast.NameARIMA
)

// Server categories (Figure 3).
const (
	CategoryShortLived    = classify.ShortLived
	CategoryStable        = classify.Stable
	CategoryDailyPattern  = classify.DailyPattern
	CategoryWeeklyPattern = classify.WeeklyPattern
	CategoryNoPattern     = classify.NoPattern
)

// StandardModels lists the models compared in Figure 11 (persistent
// forecast, SSA, feed-forward network, additive/Prophet analog).
func StandardModels() []string {
	return append([]string(nil), forecast.StandardNames...)
}

// GenerateFleet builds a deterministic synthetic server fleet.
func GenerateFleet(cfg FleetConfig) *Fleet { return simulate.GenerateFleet(cfg) }

// GenerateSQL builds a deterministic synthetic SQL database population.
func GenerateSQL(cfg SQLConfig) []*Database { return simulate.GenerateSQL(cfg) }

// NewModel builds a forecasting model by registry name.
func NewModel(name string, seed int64) (Model, error) { return forecast.New(name, seed) }

// PredictDay trains a model on history and forecasts the next day.
func PredictDay(m Model, history Series) (Series, error) { return forecast.PredictDay(m, history) }

// DefaultMetrics returns the production accuracy constants (Definitions 1–9).
func DefaultMetrics() MetricsConfig { return metrics.DefaultConfig() }

// EvaluateDay runs the full backup-day evaluation for one server: was the
// lowest-load window chosen correctly (Definition 8) and was the load during
// it predicted accurately (Definition 2)? window is the backup duration in
// observations.
func EvaluateDay(trueDay, predicted Series, window int, cfg MetricsConfig) (DayResult, error) {
	return metrics.EvaluateDay(trueDay, predicted, window, cfg)
}

// Predictable applies Definition 9 to a server's chronological backup-day
// results: every one of the trailing HistoryWeeks evaluations must have a
// correctly chosen window with accurately predicted load.
func Predictable(history []DayResult, cfg MetricsConfig) bool {
	return metrics.Predictable(history, cfg)
}

// BucketRatio returns the Definition 1 metric: the share of predicted points
// within the acceptable error bound of their true counterparts.
func BucketRatio(trueS, predicted Series, b Bound) (float64, error) {
	return metrics.BucketRatio(trueS, predicted, b)
}

// Classify categorizes a server from its load and lifespan in days.
func Classify(load Series, lifespanDays int, cfg MetricsConfig) (Category, error) {
	return classify.Categorize(load, lifespanDays, cfg)
}

// NewClassSummary returns an empty class population summary.
func NewClassSummary() *ClassSummary { return classify.NewSummary() }

// EvaluateImpact classifies scheduling decisions against actual backup-day
// load (Figure 13(a)).
func EvaluateImpact(decisions []Decision, trueDay TrueDayFunc, cfg MetricsConfig) (Impact, error) {
	return scheduler.EvaluateImpact(decisions, trueDay, cfg)
}

// Advice is the outcome of reviewing a customer-selected backup window
// against the predicted lowest-load window (Section 6.2).
type Advice = scheduler.Advice

// AdviseWindow reviews a customer-selected backup window (start index within
// the predicted day, window observations long) and suggests the predicted
// lowest-load window when the customer's choice is significantly worse.
func AdviseWindow(predictedDay Series, customerStart, window int, cfg MetricsConfig) (Advice, error) {
	return scheduler.AdviseWindow(predictedDay, customerStart, window, cfg)
}

// DayChoice is one candidate backup day in the cross-day optimization.
type DayChoice = scheduler.DayChoice

// BestBackupDay implements the paper's Section 6.1 extension: forecast the
// whole next week and pick the backup day whose lowest-load window has the
// least predicted load among accurately predicted days.
func BestBackupDay(m Model, history Series, window int, cfg MetricsConfig) (DayChoice, []DayChoice, error) {
	return scheduler.BestBackupDay(m, history, window, cfg)
}

// CompareAutoscaleModels runs the Appendix A evaluation (Figures 16/17).
func CompareAutoscaleModels(names []string, dbs []*Database, cfg AutoscaleConfig) ([]AutoscaleEval, error) {
	return autoscale.CompareModels(names, dbs, cfg)
}

// ClassifySQLFleet returns the stable share of a SQL database population
// (Definition 10, Appendix A.1).
func ClassifySQLFleet(dbs []*Database) (stable, total int, err error) {
	var c autoscale.Classifier
	return c.ClassifySQLFleet(dbs)
}

// SystemConfig configures a System.
type SystemConfig struct {
	// DataDir is the root directory for the lake and the document store.
	// Empty means an OS temporary directory (removed by Close).
	DataDir string
	// Replica names this system's shard in a region-sharded fleet. When set,
	// the durability layer namespaces its WAL and ring-snapshot objects under
	// replicas/<Replica>/ in the lake, so N replicas — each owning a
	// consistent-hash shard of servers behind a seagull-router — can share
	// one lake without colliding. Empty (the default) keeps the
	// single-process object names.
	Replica string
	// Persist keeps the document store durable on disk. Without it the
	// document store is memory-only (the lake always uses the file system).
	Persist bool
	// Stream parameterizes the lazily created telemetry ingestor (see
	// System.Stream). The zero value selects five-minute slots, a four-week
	// retained window and the Unix epoch as the slot origin.
	Stream StreamConfig
	// Refresh parameterizes the shared drift refresher (see
	// System.Refresher); the zero value selects the pipeline's production
	// defaults with a serial drain. Set Workers to retrain drifted fleets
	// concurrently on multi-core hosts.
	Refresh RefreshConfig
	// Sweep parameterizes the background drift sweeper (see System.Sweeper);
	// the zero value sweeps every summarized region once a minute once
	// StartSweeper is called.
	Sweep SweeperConfig
}

// System wires all Seagull components over shared storage.
type System struct {
	Lake      *lake.Store
	DB        *cosmos.DB
	Registry  *registry.Registry
	Dashboard *insights.Dashboard
	Pipeline  *pipeline.Pipeline
	Scheduler *scheduler.Scheduler
	Fabric    *scheduler.FabricStore

	cfg     SystemConfig
	dataDir string
	ownsDir bool

	serveOnce sync.Once
	serve     *Service

	streamOnce sync.Once
	stream     *Ingestor

	streamSetOnce sync.Once
	drift         *DriftDetector
	refresher     *Refresher
	sweeper       *Sweeper
	refUnbind     func()

	refMu     sync.Mutex
	refStop   func()
	sweepStop func()
}

// NewSystem builds a ready-to-use system.
func NewSystem(cfg SystemConfig) (*System, error) {
	dir := cfg.DataDir
	owns := false
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "seagull-*")
		if err != nil {
			return nil, fmt.Errorf("seagull: temp dir: %w", err)
		}
		owns = true
	}
	store, err := lake.Open(filepath.Join(dir, "lake"))
	if err != nil {
		return nil, err
	}
	cosmosDir := ""
	if cfg.Persist {
		cosmosDir = filepath.Join(dir, "cosmos")
	}
	db, err := cosmos.Open(cosmosDir)
	if err != nil {
		return nil, err
	}
	reg := registry.New(nil)
	dash := insights.New(nil)
	fabric := scheduler.NewFabricStore()
	sys := &System{
		Lake:      store,
		DB:        db,
		Registry:  reg,
		Dashboard: dash,
		Pipeline:  pipeline.New(store, db, reg, dash),
		Scheduler: scheduler.New(db, fabric, metrics.DefaultConfig()),
		Fabric:    fabric,
		cfg:       cfg,
		dataDir:   dir,
		ownsDir:   owns,
	}
	return sys, nil
}

// DataDir returns the system's storage root.
func (s *System) DataDir() string { return s.dataDir }

// Close stops the sweeper and the refresher, flushes the document store and
// removes owned temporary storage.
func (s *System) Close() error {
	s.refMu.Lock()
	stop, sweepStop := s.refStop, s.sweepStop
	s.refMu.Unlock()
	if sweepStop != nil {
		sweepStop()
	}
	if stop != nil {
		stop()
	}
	if s.refUnbind != nil {
		s.refUnbind()
	}
	if err := s.DB.Flush(); err != nil {
		return err
	}
	if s.ownsDir {
		return os.RemoveAll(s.dataDir)
	}
	return nil
}

// LoadFleet extracts a fleet's full telemetry into the lake, one object per
// week — the Load Extraction module (Section 2.2). It returns the number of
// telemetry rows written.
func (s *System) LoadFleet(fleet *Fleet) (int, error) {
	return extract.ExtractAll(s.Lake, fleet)
}

// RunWeek executes one weekly pipeline run.
func (s *System) RunWeek(cfg PipelineConfig) (*PipelineResult, error) {
	return s.RunWeekCtx(context.Background(), cfg)
}

// RunWeekCtx is RunWeek under a caller context: cancelling ctx abandons the
// run at the next stage boundary or server partition.
func (s *System) RunWeekCtx(ctx context.Context, cfg PipelineConfig) (*PipelineResult, error) {
	return s.Pipeline.RunWeek(ctx, cfg)
}

// RunWeeks executes the pipeline for weeks firstWeek..lastWeek (inclusive)
// in one region, returning the final week's result. Earlier weeks build the
// prediction history that Definition 9's predictability gate needs.
func (s *System) RunWeeks(region string, firstWeek, lastWeek int, cfg PipelineConfig) (*PipelineResult, error) {
	return s.RunWeeksCtx(context.Background(), region, firstWeek, lastWeek, cfg)
}

// RunWeeksCtx is RunWeeks under a caller context.
func (s *System) RunWeeksCtx(ctx context.Context, region string, firstWeek, lastWeek int, cfg PipelineConfig) (*PipelineResult, error) {
	var last *PipelineResult
	for w := firstWeek; w <= lastWeek; w++ {
		cfg := cfg
		cfg.Region = region
		cfg.Week = w
		res, err := s.Pipeline.RunWeek(ctx, cfg)
		if err != nil {
			return res, err
		}
		last = res
	}
	return last, nil
}

// ScheduleBackups chooses backup windows for every server with a stored
// prediction for week in region (Section 2.3) and records them in the
// fabric property store.
func (s *System) ScheduleBackups(region string, week int) ([]Decision, error) {
	return s.ScheduleBackupsCtx(context.Background(), region, week)
}

// ScheduleBackupsCtx is ScheduleBackups under a caller context.
func (s *System) ScheduleBackupsCtx(ctx context.Context, region string, week int) ([]Decision, error) {
	return s.Scheduler.ScheduleWeek(ctx, region, week)
}

// Service builds a serving layer over the system's registry and document
// store with the given configuration: the v2 prediction protocol (single,
// batch, advise, models, stored predictions) with a warm model pool, plus
// the v1 compatibility endpoints. See internal/serving and DESIGN.md.
//
// The caller owns the returned Service: each one subscribes its warm pool
// to the registry, so a Service discarded before the System must be
// Close()d or its pool stays pinned by the registry watcher. For the common
// one-service-per-system case use Handler(), which caches a single
// default-configuration Service.
func (s *System) Service(cfg ServiceConfig) *Service {
	return serving.NewService(s.Registry, s.DB, cfg)
}

// Handler returns the REST serving endpoint over the system's registry
// (Section 2.2's deployed-model endpoint) with default service limits and
// the system's stream layer attached (POST /v2/ingest feeds System.Stream;
// sweeps queue into the shared refresher — call StartRefresher to drain it
// in the background). The underlying Service is created once per System and
// reused — repeated calls share one warm model pool and one registry
// watcher.
func (s *System) Handler() http.Handler {
	s.serveOnce.Do(func() {
		ing, det, ref := s.streamSet()
		s.serve = serving.NewService(s.Registry, s.DB, ServiceConfig{
			Ingestor: ing, Drift: det, Refresher: ref, Sweeper: s.sweeper,
		})
	})
	return s.serve.Handler()
}

// Stream returns the system's shared telemetry ingestor, created lazily
// from SystemConfig.Stream — the entry point for live per-server load
// points (the stream layer's counterpart of LoadFleet's batch extracts).
func (s *System) Stream() *Ingestor {
	s.streamOnce.Do(func() { s.stream = stream.NewIngestor(s.cfg.Stream) })
	return s.stream
}

// Ingest rolls one live load point into the system's telemetry stream.
func (s *System) Ingest(serverID string, t time.Time, value float64) AppendStatus {
	return s.Stream().Append(serverID, t, value)
}

// streamSet lazily builds the shared drift detector and refresher. The
// refresher trains through its own warm model pool (the serving layer's
// pool machinery, bound to the registry for invalidation on
// promote/rollback) so drift-triggered retrains reuse trained scratch
// without contending with request-serving instances.
func (s *System) streamSet() (*Ingestor, *DriftDetector, *Refresher) {
	s.streamSetOnce.Do(func() {
		ing := s.Stream()
		s.drift = stream.NewDriftDetector(ing, s.DB, stream.DriftConfig{})
		pool := serving.NewModelPool(serving.PoolConfig{})
		s.refUnbind = pool.Bind(s.Registry)
		s.refresher = stream.NewRefresher(ing, s.DB, s.Registry, serving.StreamPool(pool), s.cfg.Refresh)
		s.sweeper = stream.NewSweeper(s.DB, s.drift, s.refresher, s.cfg.Sweep)
	})
	return s.stream, s.drift, s.refresher
}

// Drift returns the system's shared drift detector over the stored
// predictions.
func (s *System) Drift() *DriftDetector {
	_, det, _ := s.streamSet()
	return det
}

// Refresher returns the system's shared drift-refresh worker. Use Enqueue/
// Drain for synchronous control, or StartRefresher for a background worker.
func (s *System) Refresher() *Refresher {
	_, _, ref := s.streamSet()
	return ref
}

// StartRefresher launches the shared refresher's background worker and
// returns a stop function (also invoked by Close). Repeated calls return
// the same stop function while the worker runs.
func (s *System) StartRefresher() (stop func()) {
	s.refMu.Lock()
	defer s.refMu.Unlock()
	if s.refStop != nil {
		return s.refStop
	}
	ref := s.Refresher()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ref.Run(ctx)
	}()
	var once sync.Once
	s.refStop = func() {
		once.Do(func() {
			cancel()
			<-done
			s.refMu.Lock()
			s.refStop = nil
			s.refMu.Unlock()
		})
	}
	return s.refStop
}

// Sweeper returns the system's shared background drift sweeper: each round
// discovers every region's latest summarized week from the document store,
// sweeps it for drift against the live telemetry and queues drifted servers
// into the shared refresher. Use SweepOnce for synchronous control, or
// StartSweeper for the background loop.
func (s *System) Sweeper() *Sweeper {
	s.streamSet()
	return s.sweeper
}

// StartSweeper launches the background drift sweeper at its configured
// interval (SystemConfig.Sweep; default one minute) and returns a stop
// function (also invoked by Close). Pair it with StartRefresher, which
// drains the refresh queue the sweeper fills. Repeated calls return the same
// stop function while the loop runs.
func (s *System) StartSweeper() (stop func()) {
	s.refMu.Lock()
	defer s.refMu.Unlock()
	if s.sweepStop != nil {
		return s.sweepStop
	}
	sw := s.Sweeper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = sw.Run(ctx)
	}()
	var once sync.Once
	s.sweepStop = func() {
		once.Do(func() {
			cancel()
			<-done
			s.refMu.Lock()
			s.sweepStop = nil
			s.refMu.Unlock()
		})
	}
	return s.sweepStop
}

// SaveStreamSnapshot serializes the live telemetry rings to the lake
// (object stream/rings.snap), atomically replacing any previous snapshot —
// the drain hook that makes the stream layer survive restarts.
func (s *System) SaveStreamSnapshot() error {
	return s.Stream().SaveSnapshot(s.Lake)
}

// NewDurability builds a durability manager binding the system's stream
// ingestor to its lake: call Recover() before serving, then Start(ctx) to
// run WAL group commits and incremental snapshots in the background, and
// Close() on drain. Supersedes the Save/RestoreStreamSnapshot pair for
// deployments that need bounded loss under hard kills.
func (s *System) NewDurability(cfg DurabilityConfig) *Durability {
	if cfg.Namespace == "" {
		cfg.Namespace = s.cfg.Replica
	}
	return stream.NewDurability(s.Stream(), s.Lake, cfg)
}

// Replica returns the system's shard name in a region-sharded fleet ("" for
// a single-process deployment).
func (s *System) Replica() string { return s.cfg.Replica }

// RestoreStreamSnapshot restores the live telemetry rings from the lake's
// snapshot object — the startup hook pairing SaveStreamSnapshot.
// stream.ErrNoSnapshot means no snapshot is stored (first boot);
// stream.ErrSnapshotFormat means the stored snapshot is damaged or from a
// different ring geometry. In both cases the ingestor is untouched and the
// stream layer cold-starts cleanly.
func (s *System) RestoreStreamSnapshot() error {
	return s.Stream().LoadSnapshot(s.Lake)
}

// DashboardSummary returns the aggregated pipeline-run view.
func (s *System) DashboardSummary() insights.Summary {
	return s.Dashboard.Summarize()
}

// FleetTrueDay returns a TrueDayFunc over a fleet's generated telemetry —
// the actuals source used when evaluating scheduling impact.
func FleetTrueDay(fleet *Fleet) TrueDayFunc {
	byID := make(map[string]*Server, len(fleet.Servers))
	for _, srv := range fleet.Servers {
		byID[srv.ID] = srv
	}
	return func(serverID string, day time.Time) (Series, bool) {
		srv := byID[serverID]
		if srv == nil {
			return Series{}, false
		}
		idx, ok := srv.Load().IndexOf(day)
		if !ok {
			return Series{}, false
		}
		ppd := srv.Load().PointsPerDay()
		if idx+ppd > srv.Load().Len() {
			return Series{}, false
		}
		sub, err := srv.Load().Slice(idx, idx+ppd)
		if err != nil {
			return Series{}, false
		}
		return sub.FillGaps(), true
	}
}
