# Convenience targets; everything is plain go tooling underneath.

.PHONY: build test vet bench bench-json bench-compare race simulate-smoke docs-check

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/...

bench:
	go test -run '^$$' -bench . -benchmem .

# Full check + machine-readable snapshot (see cmd/seagull-bench).
bench-json:
	go run ./cmd/seagull-bench -out BENCH_10.json

# Diff a fresh run against the committed snapshot; fails on >10% allocs/op
# regression (the CI gate).
bench-compare:
	go run ./cmd/seagull-bench -out /tmp/bench-now.json -compare BENCH_10.json

# Time-compressed simulation smoke: six simulated hours with a burst storm
# and a drift injection, artifacts under /tmp/seagull-sim (also runs in CI).
simulate-smoke:
	go run ./cmd/seagull-simulate -scenario smoke -out /tmp/seagull-sim -quiet

# Markdown hygiene: relative links in *.md must resolve (also runs in CI).
docs-check:
	go test -run TestMarkdownLinks .
	go build ./examples/...
