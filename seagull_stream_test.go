package seagull_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"seagull"
	"seagull/internal/serving"
	"seagull/internal/stream"
)

// TestSystemStreaming drives the streaming loop through the public facade:
// batch pipeline → live ingest → drift sweep over HTTP → background
// refresher → refreshed stored prediction.
func TestSystemStreaming(t *testing.T) {
	start := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	sys, err := seagull.NewSystem(seagull.SystemConfig{
		DataDir: t.TempDir(),
		Stream:  seagull.StreamConfig{Epoch: start},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: "live", Servers: 8, Weeks: 2, Seed: 5})
	if _, err := sys.LoadFleet(fleet); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWeek(seagull.PipelineConfig{Region: "live", Week: 1}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()
	c := seagull.NewClient(srv.URL)
	stored, err := c.Predictions(context.Background(), "live", 1)
	if err != nil {
		t.Fatal(err)
	}
	preds := stored.Predictions
	if len(preds) == 0 {
		t.Fatal("no stored predictions")
	}

	// Feed every server's true telemetry through System.Ingest, running one
	// server's backup day 45 points hot so it drifts.
	hotID := preds[0].ServerID
	hotDay := preds[0].BackupDay
	for _, srv := range fleet.Servers {
		load := srv.Load()
		for i := 0; i < load.Len(); i++ {
			v := load.Values[i]
			if v != v { // missing
				continue
			}
			at := load.TimeAt(i)
			if srv.ID == hotID && !at.Before(hotDay) && at.Before(hotDay.Add(24*time.Hour)) {
				v += 45
			}
			sys.Ingest(srv.ID, at, v)
		}
	}
	if st := sys.Stream().Stats(); st.Appended == 0 || st.Servers != 8 {
		t.Fatalf("ingest stats = %+v", st)
	}

	stop := sys.StartRefresher()
	defer stop()

	// Sweep over the HTTP surface the Handler wires up.
	resp, err := c.Ingest(context.Background(), serving.IngestRequest{
		Points: []serving.IngestPoint{{ServerID: hotID, TimeUnix: hotDay.Add(25 * time.Hour).Unix(), Value: 30}},
		Sweep:  &serving.SweepSpec{Region: "live", Week: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sweep == nil || resp.Sweep.Drifted == 0 || resp.Sweep.Queued == 0 {
		t.Fatalf("sweep = %+v, want the hot server flagged and queued", resp.Sweep)
	}
	found := false
	for _, id := range resp.Sweep.Servers {
		if id == hotID {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot server %s missing from drifted set %v", hotID, resp.Sweep.Servers)
	}

	// The background worker drains the queue.
	deadline := time.Now().Add(10 * time.Second)
	for sys.Refresher().Stats().Refreshed < uint64(resp.Sweep.Queued) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := sys.Refresher().Stats()
	if st.Refreshed < uint64(resp.Sweep.Queued) || st.Failed != 0 {
		t.Fatalf("refresher stats = %+v, want %d refreshed", st, resp.Sweep.Queued)
	}

	// /varz shows the full operational picture through the facade handler.
	vz, err := c.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vz.Ingest == nil || vz.Drift == nil || vz.Refresh == nil {
		t.Fatalf("varz stream sections missing: %+v", vz)
	}
	if vz.Drift.Sweeps != 1 || vz.Refresh.Refreshed != uint64(st.Refreshed) {
		t.Fatalf("varz drift/refresh = %+v / %+v", vz.Drift, vz.Refresh)
	}

	// StartRefresher is idempotent while running; stop is safe twice.
	stop2 := sys.StartRefresher()
	stop2()
	stop2()
}

// TestStreamAliases pins the facade re-exports.
func TestStreamAliases(t *testing.T) {
	var _ *seagull.Ingestor = stream.NewIngestor(stream.Config{})
	var _ seagull.StreamConfig = stream.Config{}
	var _ seagull.DriftReport = stream.Report{}
	var _ seagull.AppendStatus = stream.Appended
	var _ *seagull.Sweeper = stream.NewSweeper(nil, nil, nil, stream.SweeperConfig{})
	var _ seagull.SweeperConfig = stream.SweeperConfig{}
	var _ seagull.RefreshConfig = stream.RefreshConfig{}
}

// TestSystemSnapshotRoundTrip drives the durability seam through the facade:
// ingest into one System, save the ring snapshot on its way down, restore it
// in a second System over the same data dir, and observe identical live
// windows.
func TestSystemSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	start := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	cfg := seagull.SystemConfig{DataDir: dir, Stream: seagull.StreamConfig{Epoch: start}}

	sys1, err := seagull.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		sys1.Ingest("s1", start.Add(time.Duration(i)*5*time.Minute), float64(10+i%9))
	}
	if err := sys1.SaveStreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	want, ok := sys1.Stream().View("s1")
	if !ok {
		t.Fatal("no live view before shutdown")
	}
	wantVals := append([]float64(nil), want.Values...)
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := seagull.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if err := sys2.RestoreStreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	got, ok := sys2.Stream().View("s1")
	if !ok {
		t.Fatal("no live view after restore")
	}
	if !got.Start.Equal(want.Start) || got.Len() != len(wantVals) {
		t.Fatalf("restored view (%s, %d) vs (%s, %d)", got.Start, got.Len(), want.Start, len(wantVals))
	}
	for i := range wantVals {
		if got.Values[i] != wantVals[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, got.Values[i], wantVals[i])
		}
	}

	// A fresh system over an empty dir reports the first-boot case.
	sys3, err := seagull.NewSystem(seagull.SystemConfig{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sys3.Close()
	if err := sys3.RestoreStreamSnapshot(); err != stream.ErrNoSnapshot {
		t.Fatalf("restore on first boot = %v, want stream.ErrNoSnapshot", err)
	}
}

// TestSystemSweeper drives the background sweeper through the facade:
// StartSweeper finds the drifted server from the stored summaries with no
// client sweep anywhere, and Close stops the loop.
func TestSystemSweeper(t *testing.T) {
	start := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	sys, err := seagull.NewSystem(seagull.SystemConfig{
		Stream: seagull.StreamConfig{Epoch: start},
		Sweep:  seagull.SweeperConfig{Interval: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: "auto", Servers: 6, Weeks: 2, Seed: 9})
	if _, err := sys.LoadFleet(fleet); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWeek(seagull.PipelineConfig{Region: "auto", Week: 1}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()
	c := seagull.NewClient(srv.URL)
	stored, err := c.Predictions(context.Background(), "auto", 1)
	if err != nil || len(stored.Predictions) == 0 {
		t.Fatalf("predictions: %v", err)
	}
	hot := stored.Predictions[0]
	for i := 0; i < 8*288; i++ {
		at := hot.BackupDay.Add(time.Duration(i-7*288) * 5 * time.Minute)
		v := 25.0
		if i >= 7*288 {
			v = hot.Values[i-7*288] + 45
		}
		sys.Ingest(hot.ServerID, at, v)
	}

	stopRef := sys.StartRefresher()
	defer stopRef()
	stopSweep := sys.StartSweeper()
	defer stopSweep()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := sys.Sweeper().Stats()
		if st.Ticks >= 1 && st.Drifted >= 1 && sys.Refresher().Stats().Refreshed >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := sys.Sweeper().Stats()
	if st.Drifted == 0 || st.Queued == 0 || st.Errors != 0 {
		t.Fatalf("sweeper stats = %+v, want the hot server found and queued", st)
	}
	// /varz carries the sweeper section through the facade handler.
	vz, err := c.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vz.Sweeper == nil || vz.Sweeper.Ticks == 0 {
		t.Fatalf("varz sweeper = %+v", vz.Sweeper)
	}
	// Idempotent start, double stop safe.
	stop2 := sys.StartSweeper()
	stop2()
	stop2()
}
