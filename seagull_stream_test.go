package seagull_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"seagull"
	"seagull/internal/serving"
	"seagull/internal/stream"
)

// TestSystemStreaming drives the streaming loop through the public facade:
// batch pipeline → live ingest → drift sweep over HTTP → background
// refresher → refreshed stored prediction.
func TestSystemStreaming(t *testing.T) {
	start := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	sys, err := seagull.NewSystem(seagull.SystemConfig{
		DataDir: t.TempDir(),
		Stream:  seagull.StreamConfig{Epoch: start},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: "live", Servers: 8, Weeks: 2, Seed: 5})
	if _, err := sys.LoadFleet(fleet); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWeek(seagull.PipelineConfig{Region: "live", Week: 1}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()
	c := seagull.NewClient(srv.URL)
	stored, err := c.Predictions(context.Background(), "live", 1)
	if err != nil {
		t.Fatal(err)
	}
	preds := stored.Predictions
	if len(preds) == 0 {
		t.Fatal("no stored predictions")
	}

	// Feed every server's true telemetry through System.Ingest, running one
	// server's backup day 45 points hot so it drifts.
	hotID := preds[0].ServerID
	hotDay := preds[0].BackupDay
	for _, srv := range fleet.Servers {
		load := srv.Load()
		for i := 0; i < load.Len(); i++ {
			v := load.Values[i]
			if v != v { // missing
				continue
			}
			at := load.TimeAt(i)
			if srv.ID == hotID && !at.Before(hotDay) && at.Before(hotDay.Add(24*time.Hour)) {
				v += 45
			}
			sys.Ingest(srv.ID, at, v)
		}
	}
	if st := sys.Stream().Stats(); st.Appended == 0 || st.Servers != 8 {
		t.Fatalf("ingest stats = %+v", st)
	}

	stop := sys.StartRefresher()
	defer stop()

	// Sweep over the HTTP surface the Handler wires up.
	resp, err := c.Ingest(context.Background(), serving.IngestRequest{
		Points: []serving.IngestPoint{{ServerID: hotID, TimeUnix: hotDay.Add(25 * time.Hour).Unix(), Value: 30}},
		Sweep:  &serving.SweepSpec{Region: "live", Week: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sweep == nil || resp.Sweep.Drifted == 0 || resp.Sweep.Queued == 0 {
		t.Fatalf("sweep = %+v, want the hot server flagged and queued", resp.Sweep)
	}
	found := false
	for _, id := range resp.Sweep.Servers {
		if id == hotID {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot server %s missing from drifted set %v", hotID, resp.Sweep.Servers)
	}

	// The background worker drains the queue.
	deadline := time.Now().Add(10 * time.Second)
	for sys.Refresher().Stats().Refreshed < uint64(resp.Sweep.Queued) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := sys.Refresher().Stats()
	if st.Refreshed < uint64(resp.Sweep.Queued) || st.Failed != 0 {
		t.Fatalf("refresher stats = %+v, want %d refreshed", st, resp.Sweep.Queued)
	}

	// /varz shows the full operational picture through the facade handler.
	vz, err := c.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vz.Ingest == nil || vz.Drift == nil || vz.Refresh == nil {
		t.Fatalf("varz stream sections missing: %+v", vz)
	}
	if vz.Drift.Sweeps != 1 || vz.Refresh.Refreshed != uint64(st.Refreshed) {
		t.Fatalf("varz drift/refresh = %+v / %+v", vz.Drift, vz.Refresh)
	}

	// StartRefresher is idempotent while running; stop is safe twice.
	stop2 := sys.StartRefresher()
	stop2()
	stop2()
}

// TestStreamAliases pins the facade re-exports.
func TestStreamAliases(t *testing.T) {
	var _ *seagull.Ingestor = stream.NewIngestor(stream.Config{})
	var _ seagull.StreamConfig = stream.Config{}
	var _ seagull.DriftReport = stream.Report{}
	var _ seagull.AppendStatus = stream.Appended
}
